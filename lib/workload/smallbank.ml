open Xenic_sim
open Xenic_cluster
open Xenic_proto

type params = {
  accounts_per_node : int;
  hotspot_frac : float;
  hotspot_prob : float;
}

let default_params =
  { accounts_per_node = 20_000; hotspot_frac = 0.04; hotspot_prob = 0.9 }

let checking_table = 0

let savings_table = 1

let initial_balance = 1_000L

(* 12-byte account objects: 8B balance + 4B pad (§5.5). *)
let value_b = 12

let encode balance =
  let b = Bytes.make value_b '\000' in
  Bytes.set_int64_le b 0 balance;
  b

let decode v = Bytes.get_int64_le v 0

let key ~table ~shard ~account =
  Keyspace.make ~shard ~table ~ordered:false ~id:account

let store_cfg p =
  let keys_per_shard = 2 * p.accounts_per_node in
  let seg_size = 64 in
  let slots = int_of_float (float_of_int keys_per_shard /. 0.75) in
  let segments = max 4 ((slots + seg_size - 1) / seg_size) in
  (segments, seg_size, Some 8)

let chained_buckets p =
  let keys_per_shard = 2 * p.accounts_per_node in
  max 64 (keys_per_shard / 6)

let load p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  for shard = 0 to nodes - 1 do
    for account = 0 to p.accounts_per_node - 1 do
      sys.System.load (key ~table:checking_table ~shard ~account)
        (encode initial_balance);
      sys.System.load (key ~table:savings_table ~shard ~account)
        (encode initial_balance)
    done
  done;
  sys.System.seal ()

let pick_account p rng =
  let hot_n =
    max 1 (int_of_float (float_of_int p.accounts_per_node *. p.hotspot_frac))
  in
  if Rng.float rng < p.hotspot_prob then Rng.int rng hot_n
  else Rng.int rng p.accounts_per_node

let pick_shard rng ~nodes = Rng.int rng nodes

let balance_of view k =
  match view k with Some v -> decode v | None -> 0L

let exec_cost = 200.0

let mk ?(ro = false) ~read_set ~write_set exec =
  ignore ro;
  Types.make ~host_exec_ns:exec_cost ~state_bytes:16 ~ship_exec:true ~read_set
    ~write_set exec

(* -- Transaction types --------------------------------------------- *)

let txn_balance p rng ~nodes =
  let s = pick_shard rng ~nodes and a = pick_account p rng in
  let kc = key ~table:checking_table ~shard:s ~account:a in
  let ks = key ~table:savings_table ~shard:s ~account:a in
  mk ~ro:true ~read_set:[ kc; ks ] ~write_set:[] (fun _view -> [])

let txn_deposit_checking p rng ~nodes =
  let s = pick_shard rng ~nodes and a = pick_account p rng in
  let kc = key ~table:checking_table ~shard:s ~account:a in
  let amount = Int64.of_int (1 + Rng.int rng 100) in
  mk ~read_set:[ kc ] ~write_set:[ kc ] (fun view ->
      [ Op.Put (kc, encode (Int64.add (balance_of view kc) amount)) ])

let txn_transact_savings p rng ~nodes =
  let s = pick_shard rng ~nodes and a = pick_account p rng in
  let ks = key ~table:savings_table ~shard:s ~account:a in
  let amount = Int64.of_int (1 + Rng.int rng 100) in
  mk ~read_set:[ ks ] ~write_set:[ ks ] (fun view ->
      [ Op.Put (ks, encode (Int64.add (balance_of view ks) amount)) ])

let txn_amalgamate p rng ~nodes =
  let s1 = pick_shard rng ~nodes and a1 = pick_account p rng in
  let s2 = pick_shard rng ~nodes and a2 = pick_account p rng in
  let kc1 = key ~table:checking_table ~shard:s1 ~account:a1 in
  let ks1 = key ~table:savings_table ~shard:s1 ~account:a1 in
  let kc2 = key ~table:checking_table ~shard:s2 ~account:a2 in
  if kc1 = kc2 then
    (* Self-amalgamate: move savings into checking. *)
    mk ~read_set:[ kc1; ks1 ] ~write_set:[ kc1; ks1 ] (fun view ->
        let c = balance_of view kc1 and s = balance_of view ks1 in
        [ Op.Put (ks1, encode 0L); Op.Put (kc1, encode (Int64.add c s)) ])
  else
    mk
      ~read_set:[ kc1; ks1; kc2 ]
      ~write_set:[ kc1; ks1; kc2 ]
      (fun view ->
        let c1 = balance_of view kc1
        and s1v = balance_of view ks1
        and c2 = balance_of view kc2 in
        [
          Op.Put (kc1, encode 0L);
          Op.Put (ks1, encode 0L);
          Op.Put (kc2, encode Int64.(add c2 (add c1 s1v)));
        ])

let txn_write_check p rng ~nodes =
  let s = pick_shard rng ~nodes and a = pick_account p rng in
  let kc = key ~table:checking_table ~shard:s ~account:a in
  let ks = key ~table:savings_table ~shard:s ~account:a in
  let amount = Int64.of_int (1 + Rng.int rng 100) in
  mk ~read_set:[ kc; ks ] ~write_set:[ kc ] (fun view ->
      let c = balance_of view kc and sv = balance_of view ks in
      let penalty =
        if Int64.(add c sv) < amount then 1L else 0L
      in
      [ Op.Put (kc, encode Int64.(sub (sub c amount) penalty)) ])

let txn_send_payment p rng ~nodes =
  let s1 = pick_shard rng ~nodes and a1 = pick_account p rng in
  let s2 = pick_shard rng ~nodes and a2 = pick_account p rng in
  let k1 = key ~table:checking_table ~shard:s1 ~account:a1 in
  let k2 = key ~table:checking_table ~shard:s2 ~account:a2 in
  let amount = Int64.of_int (1 + Rng.int rng 50) in
  if k1 = k2 then
    mk ~read_set:[ k1 ] ~write_set:[ k1 ] (fun view ->
        [ Op.Put (k1, encode (balance_of view k1)) ])
  else
    mk ~read_set:[ k1; k2 ] ~write_set:[ k1; k2 ] (fun view ->
        let b1 = balance_of view k1 and b2 = balance_of view k2 in
        [
          Op.Put (k1, encode (Int64.sub b1 amount));
          Op.Put (k2, encode (Int64.add b2 amount));
        ])

let spec p ~nodes =
  {
    Driver.name = "smallbank";
    generate =
      (fun rng ~node ->
        ignore node;
        let r = Rng.float rng in
        if Float.compare r 0.15 < 0 then ("balance", txn_balance p rng ~nodes)
        else if Float.compare r 0.40 < 0 then
          ("deposit_checking", txn_deposit_checking p rng ~nodes)
        else if Float.compare r 0.65 < 0 then
          ("transact_savings", txn_transact_savings p rng ~nodes)
        else if Float.compare r 0.80 < 0 then
          ("amalgamate", txn_amalgamate p rng ~nodes)
        else ("write_check", txn_write_check p rng ~nodes));
  }

let transfer_spec p ~nodes =
  {
    Driver.name = "smallbank-transfer";
    generate =
      (fun rng ~node ->
        ignore node;
        ("send_payment", txn_send_payment p rng ~nodes));
  }

let total_money_replica p (sys : System.t) ~node ~shard =
  let total = ref 0L in
  for account = 0 to p.accounts_per_node - 1 do
    List.iter
      (fun table ->
        match sys.System.peek ~node (key ~table ~shard ~account) with
        | Some v -> total := Int64.add !total (decode v)
        | None -> ())
      [ checking_table; savings_table ]
  done;
  !total

let total_money p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  let total = ref 0L in
  for shard = 0 to nodes - 1 do
    total :=
      Int64.add !total (total_money_replica p sys ~node:shard ~shard)
  done;
  !total
