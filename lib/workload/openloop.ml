open Xenic_sim
open Xenic_cluster
open Xenic_proto

type phase = {
  duration_ns : float;
  rate_tps : float;
  theta : float;
  hot_frac : float;
}

type workload = {
  name : string;
  make :
    nodes:int -> node:int -> (Rng.t -> theta:float -> hot:bool -> string * Types.t);
}

type phase_stat = {
  p_offered : int;
  p_admitted : int;
  p_committed : int;
  p_aborted : int;
  p_shed : int;
}

type result = {
  offered : int;
  admitted : int;
  committed : int;
  aborted : int;
  retried : int;
  shed : (string * int) list;
  shed_total : int;
  goodput_tps : float;
  median_latency_us : float;
  p99_latency_us : float;
  duration_ns : float;
  per_phase : phase_stat array;
  metrics : Metrics.t;
}

(* One queued request. [t_arr] is the original arrival instant — retries
   keep it, so latency and the admission deadline both measure from the
   user's point of view. *)
type req = {
  txn : Types.t;
  cls : string;
  t_arr : float;
  phase : int;
  attempt : int;
}

let n_causes = List.length Admission.all_causes

let cause_index c =
  let rec go i = function
    | [] -> assert false
    | c' :: rest -> if c' = c then i else go (i + 1) rest
  in
  go 0 Admission.all_causes

(* Per-coordinator accounting. Each instance is written only by events
   running on its coordinator's node (hence partition); the main thread
   merges them in coordinator order after the engine has drained. *)
type cstate = {
  cmetrics : Metrics.t;
  mutable w_offered : int;
  mutable w_admitted : int;
  mutable w_committed : int;
  mutable w_aborted : int;
  mutable w_retried : int;
  w_shed : int array;  (* per Admission.cause *)
  ph_offered : int array;
  ph_admitted : int array;
  ph_committed : int array;
  ph_aborted : int array;
  ph_shed : int array;
}

let mk_cstate nphases =
  {
    cmetrics = Metrics.create ();
    w_offered = 0;
    w_admitted = 0;
    w_committed = 0;
    w_aborted = 0;
    w_retried = 0;
    w_shed = Array.make n_causes 0;
    ph_offered = Array.make nphases 0;
    ph_admitted = Array.make nphases 0;
    ph_committed = Array.make nphases 0;
    ph_aborted = Array.make nphases 0;
    ph_shed = Array.make nphases 0;
  }

let run ?(seed = 1L) ?(warmup_ns = 0.0) ?(admission = Admission.unlimited)
    ?(service_slots = 8) ?(retries = 0) ?(users = 2_000_000)
    ?(active_frac = 0.05) ?(churn_period_ns = 2e6) ?coordinators ?telemetry
    (sys : System.t) (wl : workload) ~phases =
  if phases = [] then invalid_arg "Openloop.run: empty phase list";
  List.iter
    (fun (p : phase) ->
      if Float.compare p.duration_ns 0.0 <= 0 then
        invalid_arg "Openloop.run: phase duration must be > 0";
      if Float.compare p.rate_tps 0.0 <= 0 then
        invalid_arg "Openloop.run: phase rate must be > 0";
      if Float.compare p.hot_frac 0.0 < 0 || Float.compare p.hot_frac 1.0 > 0
      then invalid_arg "Openloop.run: hot_frac must be in [0, 1]")
    phases;
  if users < 1 then invalid_arg "Openloop.run: users must be >= 1";
  if service_slots < 1 then
    invalid_arg "Openloop.run: service_slots must be >= 1";
  if retries < 0 then invalid_arg "Openloop.run: retries must be >= 0";
  if Float.compare warmup_ns 0.0 < 0 then
    invalid_arg "Openloop.run: warmup_ns must be >= 0";
  let engine = sys.System.engine in
  let nodes = sys.System.cfg.Config.nodes in
  let coords =
    match coordinators with
    | Some c ->
        if c < 1 || c > nodes then
          invalid_arg "Openloop.run: coordinators out of range";
        c
    | None -> nodes
  in
  let phases_a = Array.of_list phases in
  let nphases = Array.length phases_a in
  let ends = Array.make nphases 0.0 in
  let total =
    let acc = ref 0.0 in
    Array.iteri
      (fun i (p : phase) ->
        acc := !acc +. p.duration_ns;
        ends.(i) <- !acc)
      phases_a;
    !acc
  in
  if Float.compare warmup_ns total >= 0 then
    invalid_arg "Openloop.run: warmup_ns must be < total phase duration";
  let phase_at rel =
    let rec go i = if i >= nphases - 1 || rel < ends.(i) then i else go (i + 1) in
    go 0
  in
  let t0 = Engine.now engine in
  let wstart = t0 +. warmup_ns in
  (* Driver-side accounting stops when the arrival schedule ends: a
     commit (or deadline drop) landing after [t_end] belongs to backlog
     the system failed to serve in time, and counting it would make an
     unbounded queue look as good as a bounded one once the run drains.
     The system's own metrics still record everything. *)
  let t_end = t0 +. total in
  (* The recorder shares the accounting cutoff: recordings during the
     post-schedule drain — including the system's own commit/abort
     streams — are dropped, exactly like the driver-side counters. *)
  sys.System.set_telemetry telemetry;
  (match telemetry with
  | None -> ()
  | Some tel -> Xenic_telemetry.Telemetry.set_cutoff tel t_end);
  let stack = sys.System.name in
  let root = Rng.create ~seed in
  (* Active-session churn: a window of [active] users slides over the
     population by [stride] every churn period — a pure function of
     simulated time, so every coordinator (and every domain count)
     agrees on the active range without shared state. *)
  let active =
    max 1 (min users (int_of_float (active_frac *. float_of_int users)))
  in
  let stride = max 1 (active / 4) in
  let states = Array.init coords (fun _ -> mk_cstate nphases) in
  let adms = Array.init coords (fun _ -> Admission.create admission) in
  for coord = 0 to coords - 1 do
    let cs = states.(coord) in
    let adm = adms.(coord) in
    let gen = wl.make ~nodes ~node:coord in
    (* [arr] is this coordinator's sequential arrival stream (gaps, user
       picks, hot coin); [base] is never advanced — per-arrival streams
       derive from it keyed by (user, seq), so a transaction's draws
       depend only on who issued it and when, not on what any other
       arrival consumed. *)
    let arr = Rng.derive root ~index:(0xA000 + coord) in
    let base = Rng.derive root ~index:(0xB000 + coord) in
    let mb = Mailbox.create ~name:(Printf.sprintf "openloop-q%d" coord) engine in
    let record_shed cs idx cause ~now ~latency_ns =
      sys.System.record_shed ~latency_ns;
      (match telemetry with
      | None -> ()
      | Some tel ->
          Xenic_telemetry.Telemetry.record_shed tel ~stack ~node:coord
            ~cause:(Admission.cause_name cause));
      if Float.compare now t_end <= 0 then begin
        cs.ph_shed.(idx) <- cs.ph_shed.(idx) + 1;
        if Float.compare now wstart >= 0 then
          cs.w_shed.(cause_index cause) <- cs.w_shed.(cause_index cause) + 1
      end
    in
    let rec serve () =
      match Mailbox.recv mb with
      | None -> ()
      | Some r ->
          let waited = Engine.now engine -. r.t_arr in
          (if Admission.drop_expired adm ~waited_ns:waited then
             record_shed cs r.phase Admission.Deadline
               ~now:(Engine.now engine) ~latency_ns:waited
           else begin
             let outcome = sys.System.run_txn ~node:coord r.txn in
             (match telemetry with
             | None -> ()
             | Some tel ->
                 Xenic_telemetry.Telemetry.sample_queue tel ~stack ~node:coord
                   ~depth:(Admission.depth adm));
             Admission.finish adm;
             let done_t = Engine.now engine in
             let latency = done_t -. r.t_arr in
             let counted = Float.compare done_t t_end <= 0 in
             let in_window =
               counted && Float.compare done_t wstart >= 0
             in
             match outcome with
             | Types.Committed ->
                 if counted then
                   cs.ph_committed.(r.phase) <- cs.ph_committed.(r.phase) + 1;
                 if in_window then begin
                   cs.w_committed <- cs.w_committed + 1;
                   Metrics.record_class cs.cmetrics ~cls:r.cls
                     ~latency_ns:latency Types.Committed
                 end
             | Types.Aborted ->
                 if r.attempt < retries then begin
                   (* Client-side retry: back through admission, so a
                      deadline/depth-bounded queue sheds the storm
                      instead of feeding it. *)
                   if in_window then cs.w_retried <- cs.w_retried + 1;
                   match
                     Admission.offer adm
                       ~occupancy:(sys.System.ingress_occupancy ~node:coord)
                   with
                   | Ok () ->
                       Mailbox.send mb (Some { r with attempt = r.attempt + 1 })
                   | Error cause ->
                       record_shed cs r.phase cause ~now:done_t
                         ~latency_ns:latency
                 end
                 else begin
                   if counted then
                     cs.ph_aborted.(r.phase) <- cs.ph_aborted.(r.phase) + 1;
                   if in_window then begin
                     cs.w_aborted <- cs.w_aborted + 1;
                     Metrics.record_class cs.cmetrics ~cls:r.cls
                       ~latency_ns:latency Types.Aborted
                   end
                 end
           end);
          serve ()
    in
    let occ_last = ref t0 in
    let rec arrive seq =
      let now = Engine.now engine in
      let rel = now -. t0 in
      if Float.compare rel total >= 0 then
        (* Schedule stops: poison each service slot so the queue drains
           and the engine can finish. *)
        for _ = 1 to service_slots do
          Mailbox.send mb None
        done
      else begin
        let idx = phase_at rel in
        let ph = phases_a.(idx) in
        let epoch = int_of_float (rel /. churn_period_ns) in
        let win = epoch * stride mod users in
        let user = (win + Rng.int arr active) mod users in
        let hot = Float.compare (Rng.float arr) ph.hot_frac < 0 in
        let txn_rng = Rng.derive (Rng.derive base ~index:user) ~index:seq in
        let cls, txn = gen txn_rng ~theta:ph.theta ~hot in
        cs.ph_offered.(idx) <- cs.ph_offered.(idx) + 1;
        if Float.compare now wstart >= 0 then cs.w_offered <- cs.w_offered + 1;
        let occupancy = sys.System.ingress_occupancy ~node:coord in
        (match telemetry with
        | None -> ()
        | Some tel ->
            Xenic_telemetry.Telemetry.record_offered tel ~stack ~node:coord;
            (* Coordinator-ingress occupancy integral, event-free: the
               gauge read at this arrival is integrated backward over
               the span since the previous one (coordinator-local
               state, so partition-safe). *)
            if Float.compare now !occ_last > 0 then begin
              Xenic_telemetry.Telemetry.add_occupancy tel ~stack ~node:coord
                ~resource:"ingress" ~from:!occ_last ~until:now
                ~value:occupancy;
              occ_last := now
            end);
        (match Admission.offer adm ~occupancy with
        | Ok () ->
            cs.ph_admitted.(idx) <- cs.ph_admitted.(idx) + 1;
            if Float.compare now wstart >= 0 then
              cs.w_admitted <- cs.w_admitted + 1;
            (match telemetry with
            | None -> ()
            | Some tel ->
                Xenic_telemetry.Telemetry.record_admitted tel ~stack
                  ~node:coord;
                Xenic_telemetry.Telemetry.sample_queue tel ~stack ~node:coord
                  ~depth:(Admission.depth adm));
            Mailbox.send mb (Some { txn; cls; t_arr = now; phase = idx; attempt = 0 })
        | Error cause -> record_shed cs idx cause ~now ~latency_ns:0.0);
        let gap =
          Rng.exponential arr
            ~mean:(1e9 *. float_of_int coords /. ph.rate_tps)
        in
        Process.sleep ~node:coord engine gap;
        arrive (seq + 1)
      end
    in
    (* Pin each coordinator's generator and service slots to its node's
       partition; on an unpartitioned engine ~node is ignored. *)
    Engine.at ~node:coord engine t0 (fun () ->
        for _ = 1 to service_slots do
          Process.spawn engine serve
        done;
        Process.spawn engine (fun () -> arrive 0))
  done;
  ignore (Engine.run engine);
  (match telemetry with
  | None -> ()
  | Some tel ->
      Xenic_telemetry.Telemetry.seal tel;
      sys.System.set_telemetry None);
  sys.System.stop_background ();
  Process.spawn engine (fun () -> sys.System.quiesce ());
  ignore (Engine.run engine);
  sys.System.sync ();
  if Engine.strict engine then begin
    let issues = sys.System.audit () @ Engine.sanitize engine in
    if issues <> [] then
      failwith
        (Printf.sprintf "Openloop.run (%s): %d sanitizer violation(s):\n%s"
           wl.name (List.length issues)
           (String.concat "\n" issues))
  end;
  (* Merge per-coordinator shards in coordinator order — deterministic
     regardless of how many domains serviced the run. *)
  let metrics = Metrics.create () in
  let offered = ref 0
  and admitted = ref 0
  and committed = ref 0
  and aborted = ref 0
  and retried = ref 0 in
  let shed_by_cause = Array.make n_causes 0 in
  Array.iter
    (fun cs ->
      Metrics.merge ~into:metrics cs.cmetrics;
      offered := !offered + cs.w_offered;
      admitted := !admitted + cs.w_admitted;
      committed := !committed + cs.w_committed;
      aborted := !aborted + cs.w_aborted;
      retried := !retried + cs.w_retried;
      Array.iteri (fun i n -> shed_by_cause.(i) <- shed_by_cause.(i) + n) cs.w_shed)
    states;
  let per_phase =
    Array.init nphases (fun i ->
        let sum f = Array.fold_left (fun a cs -> a + (f cs).(i)) 0 states in
        {
          p_offered = sum (fun cs -> cs.ph_offered);
          p_admitted = sum (fun cs -> cs.ph_admitted);
          p_committed = sum (fun cs -> cs.ph_committed);
          p_aborted = sum (fun cs -> cs.ph_aborted);
          p_shed = sum (fun cs -> cs.ph_shed);
        })
  in
  let shed =
    List.mapi
      (fun i c -> (Admission.cause_name c, shed_by_cause.(i)))
      Admission.all_causes
  in
  let duration = total -. warmup_ns in
  {
    offered = !offered;
    admitted = !admitted;
    committed = !committed;
    aborted = !aborted;
    retried = !retried;
    shed;
    shed_total = Array.fold_left ( + ) 0 shed_by_cause;
    goodput_tps = float_of_int !committed /. (duration /. 1e9);
    median_latency_us = Metrics.median_latency metrics /. 1_000.0;
    p99_latency_us = Metrics.p99_latency metrics /. 1_000.0;
    duration_ns = duration;
    per_phase;
    metrics;
  }
