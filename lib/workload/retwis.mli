(** Retwis benchmark (§5.4): a Twitter-clone mix over 64-byte objects
    accessed with a Zipf(0.5) distribution. 50% read-only transactions;
    1-10 keys per transaction; minimal coordinator-side computation, so
    all execution ships to the NIC. Mix follows the research variant
    used by TAPIR/Meerkat: AddUser 5%, Follow 15%, PostTweet 30%,
    GetTimeline 50%. *)

type params = {
  keys_per_node : int;
  zipf_theta : float;  (** 0.5 in the paper. *)
  value_b : int;  (** 64 in the paper. *)
}

val default_params : params

val store_cfg : params -> int * int * int option

val chained_buckets : params -> int

val load : params -> Xenic_proto.System.t -> unit

val spec : params -> nodes:int -> Driver.spec

(** Number of top Zipf ranks treated as "celebrity" accounts by the
    open-loop flash-crowd arrivals. *)
val celebrity_ranks : int

(** Theta-parameterized open-loop workload: the closed-loop {!spec} mix
    sampled at each phase's skew, plus a celebrity flash-crowd class
    for hot arrivals (timeline reads and interaction RMWs against the
    top [celebrity_ranks] accounts). *)
val openloop_spec : params -> Openloop.workload

(** Read-modify-write counter spec over the same keyspace for
    correctness tests: each committed transaction increments one
    object's embedded counter exactly once. *)
val increment_spec : params -> nodes:int -> Driver.spec

(** Sum of embedded counters over all primaries (for the increment
    spec's invariant). *)
val total_count : params -> Xenic_proto.System.t -> int64
