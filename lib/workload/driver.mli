(** Closed-loop benchmark driver.

    Each node runs [concurrency] transaction slots; each slot generates
    a transaction, submits it, records the outcome, and repeats until
    the cluster-wide committed-transaction target is reached. The first
    [warmup_frac] of commits are excluded from the measurement window.
    Per-server throughput is committed transactions divided by window
    duration and node count — the y/x axes of Fig 8. *)

type spec = {
  name : string;
  generate : Xenic_sim.Rng.t -> node:int -> string * Xenic_proto.Types.t;
      (** Produce a transaction and its class label for one attempt. *)
}

type result = {
  tput_per_server : float;  (** Committed txns per second per server. *)
  median_latency_us : float;
  p99_latency_us : float;
  abort_rate : float;
  committed : int;
  aborted : int;
  duration_ns : float;  (** Measurement window length. *)
  metrics : Xenic_proto.Metrics.t;
  profile : Xenic_profile.Profile.t option;
      (** Time-attribution profile; [Some] iff run with [~profile:true]. *)
}

(** [run sys spec ~concurrency ~target] drives the system until
    [target] transactions have committed. [seed] defaults to 1;
    aborted attempts back off [abort_backoff_ns] (default 3us) before
    retrying.

    [faults] schedules mid-run crashes: each [(t_ns, node)] crashes
    [node] at [t_ns] simulated nanoseconds after the run starts (via
    the system's [crash_node]). Slots coordinated at a crashed or
    declared-dead node retire; surviving nodes finish the run. Raises
    [Invalid_argument] on a negative fault time.

    [trace] attaches a deterministic trace for the run: protocol
    phases become spans, aborts/retries/recovery become instants, and
    a resource-utilization sampler polls the system's occupancy gauges
    every [sample_period_ns] (default 10us) until the last slot exits.

    If no commit lands inside the measurement window (e.g. warmup
    consumed every commit), the result reports zero throughput and a
    zero-length window rather than a fabricated one.

    [profile] (default false) enables per-resource time attribution
    ({!Xenic_sim.Attrib}) for the run and returns the collected
    {!Xenic_profile.Profile.t} in the result; if no [trace] was given,
    an internal one records the transaction spans critical-path
    extraction needs.

    [telemetry] attaches a windowed flight recorder for the run: the
    system streams commits/aborts into it, resource occupancy is
    integrated at transaction completions (off in windowed
    conservative mode, where slots run concurrently),
    and the recorder is sealed — [t_end] fixed at the drain instant —
    and detached before [run] returns. *)
val run :
  ?seed:int64 ->
  ?warmup_frac:float ->
  ?abort_backoff_ns:float ->
  ?coordinators:int list ->
  ?faults:(float * int) list ->
  ?trace:Xenic_sim.Trace.t ->
  ?sample_period_ns:float ->
  ?profile:bool ->
  ?telemetry:Xenic_telemetry.Telemetry.t ->
  Xenic_proto.System.t ->
  spec ->
  concurrency:int ->
  target:int ->
  result

(** Committed count for one transaction class within [result]. *)
val class_committed : result -> cls:string -> int
