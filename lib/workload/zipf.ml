type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if Float.compare theta 0.0 < 0 || Float.compare theta 1.0 >= 0 then
    invalid_arg "Zipf.create: theta";
  if Float.equal theta 0.0 then { n; theta; zetan = 0.0; alpha = 0.0; eta = 0.0 }
  else
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta }

let sample t rng =
  if Float.equal t.theta 0.0 then Xenic_sim.Rng.int rng t.n
  else begin
    let u = Xenic_sim.Rng.float rng in
    let uz = u *. t.zetan in
    if Float.compare uz 1.0 < 0 then 0
    else if Float.compare uz (1.0 +. Float.pow 0.5 t.theta) < 0 then 1
    else
      let v =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      let k = int_of_float v in
      if k >= t.n then t.n - 1 else if k < 0 then 0 else k
  end

let n t = t.n
