type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

(* Memoized zeta frontiers, one sorted point list per theta (keyed by
   the float's bits so distinct thetas never alias). A request for
   (n, theta) continues the partial sum from the largest memoized
   n0 <= n — the float additions performed for indices 1..n are then
   exactly the ones the naive loop performs, in the same order, so the
   cached zetan is bit-identical to [zeta n theta] while costing only
   O(n - n0). Callers own their cache (no module-level mutable state);
   a cache must not be shared across concurrently running domains. *)
type cache = (int64, (int * float) list ref) Hashtbl.t

let cache () : cache = Hashtbl.create 8

let zeta_from ~n0 ~sum0 n theta =
  let sum = ref sum0 in
  for i = n0 + 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let zeta_cached c n theta =
  let key = Int64.bits_of_float theta in
  let pts =
    match Hashtbl.find_opt c key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add c key r;
        r
  in
  (* Largest memoized prefix not past [n] (points are sorted by n). *)
  let rec best acc = function
    | (m, s) :: rest when m <= n -> best (Some (m, s)) rest
    | _ -> acc
  in
  match best None !pts with
  | Some (m, s) when m = n -> s
  | b ->
      let n0, sum0 = match b with Some p -> p | None -> (0, 0.0) in
      let z = zeta_from ~n0 ~sum0 n theta in
      let rec insert = function
        | (m, _) :: _ as rest when m > n -> (n, z) :: rest
        | p :: rest -> p :: insert rest
        | [] -> [ (n, z) ]
      in
      pts := insert !pts;
      z

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n";
  if Float.compare theta 0.0 < 0 || Float.compare theta 1.0 >= 0 then
    invalid_arg "Zipf.create: theta";
  if Float.equal theta 0.0 then { n; theta; zetan = 0.0; alpha = 0.0; eta = 0.0 }
  else
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta }

let create_cached c ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create_cached: n";
  if Float.compare theta 0.0 < 0 || Float.compare theta 1.0 >= 0 then
    invalid_arg "Zipf.create_cached: theta";
  if Float.equal theta 0.0 then
    { n; theta; zetan = 0.0; alpha = 0.0; eta = 0.0 }
  else
    let zetan = zeta_cached c n theta in
    let zeta2 = zeta_cached c 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; zetan; alpha; eta }

let sample t rng =
  if Float.equal t.theta 0.0 then Xenic_sim.Rng.int rng t.n
  else begin
    let u = Xenic_sim.Rng.float rng in
    let uz = u *. t.zetan in
    if Float.compare uz 1.0 < 0 then 0
    else if Float.compare uz (1.0 +. Float.pow 0.5 t.theta) < 0 then 1
    else
      let v =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      let k = int_of_float v in
      if k >= t.n then t.n - 1 else if k < 0 then 0 else k
  end

let n t = t.n
