open Xenic_sim
open Xenic_cluster
open Xenic_proto
open Tpcc_schema

type params = {
  warehouses_per_node : int;
  districts : int;
  customers_per_district : int;
  items : int;
  remote_item_prob : float;
  remote_payment_prob : float;
  uniform_item_partitions : bool;
}

let default_params =
  {
    warehouses_per_node = 8;
    districts = 10;
    customers_per_district = 60;
    items = 2_000;
    remote_item_prob = 0.01;
    remote_payment_prob = 0.15;
    uniform_item_partitions = false;
  }

let new_order_params = { default_params with uniform_item_partitions = true }

(* -- Tables and key encoding ---------------------------------------- *)

let t_warehouse = 1

let t_district = 2

let t_customer = 3

let t_stock = 4

let t_order = 5

let t_new_order = 6

let t_order_line = 7

let t_order_by_cust = 8

let t_history = 9

(* District index within a node: wl * districts + d. *)
let dix p ~wl ~d = (wl * p.districts) + d

let k_warehouse ~node ~wl =
  Keyspace.make ~shard:node ~table:t_warehouse ~ordered:false ~id:wl

let k_district p ~node ~wl ~d =
  Keyspace.make ~shard:node ~table:t_district ~ordered:false ~id:(dix p ~wl ~d)

let k_customer p ~node ~wl ~d ~c =
  Keyspace.make ~shard:node ~table:t_customer ~ordered:false
    ~id:((dix p ~wl ~d * 4096) + c)

let k_stock ~node ~wl ~i =
  Keyspace.make ~shard:node ~table:t_stock ~ordered:false
    ~id:((wl * 65536) + i)

let k_order p ~node ~wl ~d ~o =
  Keyspace.make ~shard:node ~table:t_order ~ordered:true
    ~id:((dix p ~wl ~d lsl 24) lor o)

let k_new_order p ~node ~wl ~d ~o =
  Keyspace.make ~shard:node ~table:t_new_order ~ordered:true
    ~id:((dix p ~wl ~d lsl 24) lor o)

let k_order_line p ~node ~wl ~d ~o ~line =
  Keyspace.make ~shard:node ~table:t_order_line ~ordered:true
    ~id:((((dix p ~wl ~d lsl 24) lor o) lsl 4) lor line)

let k_order_by_cust p ~node ~wl ~d ~c ~o =
  Keyspace.make ~shard:node ~table:t_order_by_cust ~ordered:true
    ~id:((((dix p ~wl ~d * 4096) + c) lsl 24) lor o)

let k_history p ~node ~wl ~d ~seq =
  Keyspace.make ~shard:node ~table:t_history ~ordered:true
    ~id:((dix p ~wl ~d lsl 30) lor seq)

(* -- Store sizing ---------------------------------------------------- *)

let hash_keys_per_shard p =
  p.warehouses_per_node
  * (1 + p.districts + (p.districts * p.customers_per_district) + p.items)

let store_cfg p =
  let seg_size = 64 in
  let slots = int_of_float (float_of_int (hash_keys_per_shard p) /. 0.7) in
  let segments = max 8 ((slots + seg_size - 1) / seg_size) in
  (segments, seg_size, Some 8)

let chained_buckets p = max 64 (hash_keys_per_shard p / 6)

(* -- Loading --------------------------------------------------------- *)

let make_items p =
  let rng = Rng.create ~seed:7L in
  Array.init p.items (fun i ->
      {
        Item.i_id = i;
        i_im_id = Rng.int rng 10_000;
        i_name = Printf.sprintf "item-%06d" i;
        i_price = 1.0 +. (float_of_int (Rng.int rng 9900) /. 100.0);
        i_data = "item-data";
      })

let load p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  let rng = Rng.create ~seed:11L in
  for node = 0 to nodes - 1 do
    for wl = 0 to p.warehouses_per_node - 1 do
      sys.System.load (k_warehouse ~node ~wl)
        (Warehouse.encode
           {
             Warehouse.w_id = (node * p.warehouses_per_node) + wl;
             w_name = Printf.sprintf "w-%d-%d" node wl;
             w_street_1 = "1 Main St";
             w_street_2 = "";
             w_city = "Springfield";
             w_state = "WA";
             w_zip = "98100";
             w_tax = float_of_int (Rng.int rng 20) /. 100.0;
             w_ytd = 0.0;
           });
      for d = 0 to p.districts - 1 do
        sys.System.load (k_district p ~node ~wl ~d)
          (District.encode
             {
               District.d_id = d;
               d_w_id = (node * p.warehouses_per_node) + wl;
               d_name = Printf.sprintf "d-%d" d;
               d_street_1 = "2 Side St";
               d_street_2 = "";
               d_city = "Springfield";
               d_state = "WA";
               d_zip = "98100";
               d_tax = float_of_int (Rng.int rng 20) /. 100.0;
               d_ytd = 0.0;
               d_next_o_id = 1;
             });
        for c = 0 to p.customers_per_district - 1 do
          sys.System.load (k_customer p ~node ~wl ~d ~c)
            (Customer.encode
               {
                 Customer.c_id = c;
                 c_d_id = d;
                 c_w_id = (node * p.warehouses_per_node) + wl;
                 c_first = Printf.sprintf "First%d" c;
                 c_middle = "OE";
                 c_last = Printf.sprintf "Last%d" (c mod 10);
                 c_street_1 = "3 Back St";
                 c_street_2 = "";
                 c_city = "Springfield";
                 c_state = "WA";
                 c_zip = "98100";
                 c_phone = "555-0100";
                 c_since = 0;
                 c_credit = (if Rng.int rng 10 = 0 then "BC" else "GC");
                 c_credit_lim = 50_000.0;
                 c_discount = float_of_int (Rng.int rng 50) /. 100.0;
                 c_balance = -10.0;
                 c_ytd_payment = 10.0;
                 c_payment_cnt = 1;
                 c_delivery_cnt = 0;
                 c_data = "customer-data";
               })
        done
      done;
      for i = 0 to p.items - 1 do
        sys.System.load (k_stock ~node ~wl ~i)
          (Stock.encode
             {
               Stock.s_i_id = i;
               s_w_id = (node * p.warehouses_per_node) + wl;
               s_quantity = 10 + Rng.int rng 91;
               s_dist = Array.make 10 "dist-info";
               s_ytd = 0;
               s_order_cnt = 0;
               s_remote_cnt = 0;
               s_data = "stock-data";
             })
      done
    done
  done;
  sys.System.seal ()

(* -- Transactions ---------------------------------------------------- *)

let dec_district view k =
  match view k with Some b -> District.decode b | None -> failwith "no district"

let dec_stock view k =
  match view k with Some b -> Stock.decode b | None -> failwith "no stock"

(* New Order (§5.2): read warehouse/district/customer, read+update the
   stock of 5-15 items, insert the order, its index entries, and one
   order line per item. *)
let txn_new_order p items ~nodes rng ~node =
  let wl = Rng.int rng p.warehouses_per_node in
  let d = Rng.int rng p.districts in
  let c = Rng.int rng p.customers_per_district in
  let ol_cnt = 5 + Rng.int rng 11 in
  let lines =
    Array.init ol_cnt (fun _ ->
        let i = Rng.int rng p.items in
        let supply_node, supply_wl =
          if p.uniform_item_partitions then
            (Rng.int rng nodes, Rng.int rng p.warehouses_per_node)
          else if Rng.float rng < p.remote_item_prob then
            ((node + 1 + Rng.int rng (max 1 (nodes - 1))) mod nodes,
             Rng.int rng p.warehouses_per_node)
          else (node, wl)
        in
        let qty = 1 + Rng.int rng 10 in
        (i, supply_node, supply_wl, qty))
  in
  let kw = k_warehouse ~node ~wl in
  let kd = k_district p ~node ~wl ~d in
  let kc = k_customer p ~node ~wl ~d ~c in
  let stock_keys =
    Array.to_list
      (Array.map
         (fun (i, sn, swl, _) -> k_stock ~node:sn ~wl:swl ~i)
         lines)
  in
  let stock_keys = List.sort_uniq compare stock_keys in
  let read_set = kw :: kd :: kc :: stock_keys in
  let write_set = kd :: stock_keys in
  let exec view =
    let dist = dec_district view kd in
    let o = dist.District.d_next_o_id in
    let all_local =
      Array.for_all (fun (_, sn, swl, _) -> sn = node && swl = wl) lines
    in
    let stock_ops =
      List.map
        (fun sk ->
          let s = dec_stock view sk in
          let used =
            Array.to_list lines
            |> List.filter (fun (i, sn, swl, _) ->
                   k_stock ~node:sn ~wl:swl ~i = sk)
          in
          let total_qty =
            List.fold_left (fun acc (_, _, _, q) -> acc + q) 0 used
          in
          let remote =
            List.exists (fun (_, sn, swl, _) -> sn <> node || swl <> wl) used
          in
          let quantity =
            if s.Stock.s_quantity >= total_qty + 10 then
              s.Stock.s_quantity - total_qty
            else s.Stock.s_quantity - total_qty + 91
          in
          Op.Put
            ( sk,
              Stock.encode
                {
                  s with
                  Stock.s_quantity = quantity;
                  s_ytd = s.Stock.s_ytd + total_qty;
                  s_order_cnt = s.Stock.s_order_cnt + 1;
                  s_remote_cnt =
                    (s.Stock.s_remote_cnt + if remote then 1 else 0);
                } ))
        stock_keys
    in
    let order_lines =
      Array.to_list
        (Array.mapi
           (fun line (i, sn, swl, qty) ->
             let item : Item.t = items.(i) in
             Op.Put
               ( k_order_line p ~node ~wl ~d ~o ~line,
                 Order_line.encode
                   {
                     Order_line.ol_o_id = o;
                     ol_d_id = d;
                     ol_w_id = (node * p.warehouses_per_node) + wl;
                     ol_number = line;
                     ol_i_id = i;
                     ol_supply_w_id = (sn * p.warehouses_per_node) + swl;
                     ol_delivery_d = -1;
                     ol_quantity = qty;
                     ol_amount = float_of_int qty *. item.Item.i_price;
                     ol_dist_info = "dist-info";
                   } ))
           lines)
    in
    (* Op order matters for observers of partially-applied records:
       the order and its lines are applied before the NEW-ORDER row
       that makes them deliverable, and the district row (whose version
       serializes the schedule) comes last. *)
    Op.Put
      ( k_order p ~node ~wl ~d ~o,
        Order.encode
          {
            Order.o_id = o;
            o_d_id = d;
            o_w_id = (node * p.warehouses_per_node) + wl;
            o_c_id = c;
            o_entry_d = 0;
            o_carrier_id = -1;
            o_ol_cnt = ol_cnt;
            o_all_local = all_local;
          } )
    :: Op.Put (k_order_by_cust p ~node ~wl ~d ~c ~o, Bytes.make 8 '\000')
    :: (order_lines
       @ Op.Put
           ( k_new_order p ~node ~wl ~d ~o,
             New_order.encode
               { New_order.no_o_id = o; no_d_id = d; no_w_id = 0 } )
         :: stock_ops
       @ [ Op.Put (kd, District.encode { dist with District.d_next_o_id = o + 1 }) ])
  in
  Types.make ~host_exec_ns:900.0 ~state_bytes:(16 * ol_cnt) ~ship_exec:true
    ~read_set ~write_set exec

(* Payment: update warehouse/district YTD and the customer's balance
   (15% of customers belong to a remote warehouse), insert history. *)
let txn_payment p ~nodes rng ~node ~hseq =
  let wl = Rng.int rng p.warehouses_per_node in
  let d = Rng.int rng p.districts in
  let amount = 1.0 +. (float_of_int (Rng.int rng 499_900) /. 100.0) in
  let c_node, c_wl =
    if Rng.float rng < p.remote_payment_prob && nodes > 1 then
      ((node + 1 + Rng.int rng (nodes - 1)) mod nodes,
       Rng.int rng p.warehouses_per_node)
    else (node, wl)
  in
  let c_d = Rng.int rng p.districts in
  let c = Rng.int rng p.customers_per_district in
  let kw = k_warehouse ~node ~wl in
  let kd = k_district p ~node ~wl ~d in
  let kc = k_customer p ~node:c_node ~wl:c_wl ~d:c_d ~c in
  let kh = k_history p ~node ~wl ~d ~seq:hseq in
  let read_set = [ kw; kd; kc ] in
  let write_set = [ kw; kd; kc ] in
  let exec view =
    let w =
      match view kw with Some b -> Warehouse.decode b | None -> failwith "no w"
    in
    let dist = dec_district view kd in
    let cust =
      match view kc with Some b -> Customer.decode b | None -> failwith "no c"
    in
    [
      Op.Put (kw, Warehouse.encode { w with Warehouse.w_ytd = w.Warehouse.w_ytd +. amount });
      Op.Put (kd, District.encode { dist with District.d_ytd = dist.District.d_ytd +. amount });
      Op.Put
        ( kc,
          Customer.encode
            {
              cust with
              Customer.c_balance = cust.Customer.c_balance -. amount;
              c_ytd_payment = cust.Customer.c_ytd_payment +. amount;
              c_payment_cnt = cust.Customer.c_payment_cnt + 1;
            } );
      Op.Put
        ( kh,
          History.encode
            {
              History.h_c_id = c;
              h_c_d_id = c_d;
              h_c_w_id = (c_node * p.warehouses_per_node) + c_wl;
              h_d_id = d;
              h_w_id = (node * p.warehouses_per_node) + wl;
              h_date = 0;
              h_amount = amount;
              h_data = "payment";
            } );
    ]
  in
  Types.make ~host_exec_ns:700.0 ~state_bytes:32 ~ship_exec:true ~read_set
    ~write_set exec

(* Order Status (read-only, local): the customer's last order and its
   lines, scanned from the local B+ trees. *)
let txn_order_status p (sys : System.t) rng ~node =
  let wl = Rng.int rng p.warehouses_per_node in
  let d = Rng.int rng p.districts in
  let c = Rng.int rng p.customers_per_district in
  let kc = k_customer p ~node ~wl ~d ~c in
  let exec view =
    ignore (view kc);
    (match
       sys.System.peek_max ~node
         ~lo:(k_order_by_cust p ~node ~wl ~d ~c ~o:0)
         ~hi:(k_order_by_cust p ~node ~wl ~d ~c ~o:((1 lsl 24) - 1))
     with
    | Some (k, _) ->
        let o = Keyspace.id k land ((1 lsl 24) - 1) in
        ignore
          (sys.System.peek_range ~node
             ~lo:(k_order_line p ~node ~wl ~d ~o ~line:0)
             ~hi:(k_order_line p ~node ~wl ~d ~o ~line:15))
    | None -> ());
    []
  in
  Types.make ~host_exec_ns:900.0 ~ship_exec:false ~read_set:[ kc ] ~write_set:[]
    exec

(* Delivery, chopped per district: pop the oldest NEW-ORDER, mark the
   order delivered, add its amount to the customer's balance. The
   district row is written to serialize concurrent deliveries. *)
let txn_delivery p (sys : System.t) rng ~node =
  let wl = Rng.int rng p.warehouses_per_node in
  let d = Rng.int rng p.districts in
  let kd = k_district p ~node ~wl ~d in
  (* The customer cannot be known until execution; lock the district
     and read the oldest undelivered order during execution, emitting
     ops on local ordered tables plus one customer update discovered by
     the scan. The customer key is declared conservatively by scanning
     at generation time; if the order was taken meanwhile, validation
     on the district row aborts and the driver retries. *)
  let oldest =
    sys.System.peek_min ~node
      ~lo:(k_new_order p ~node ~wl ~d ~o:0)
      ~hi:(k_new_order p ~node ~wl ~d ~o:((1 lsl 24) - 1))
  in
  match oldest with
  | None ->
      (* Nothing to deliver: a read-only no-op on the district. *)
      Types.make ~host_exec_ns:400.0 ~ship_exec:false ~read_set:[ kd ]
        ~write_set:[] (fun _ -> [])
  | Some (kno, _) ->
      let o = Keyspace.id kno land ((1 lsl 24) - 1) in
      let korder = k_order p ~node ~wl ~d ~o in
      let c =
        match sys.System.peek ~node korder with
        | Some b -> (Order.decode b).Order.o_c_id
        | None -> 0
      in
      let kc = k_customer p ~node ~wl ~d ~c in
      let exec view =
        let dist = dec_district view kd in
        match
          ( sys.System.peek ~node korder,
            sys.System.peek ~node (k_new_order p ~node ~wl ~d ~o) )
        with
        | None, _ | _, None ->
            (* The order vanished or was already delivered between
               generation and execution: commit a no-op that still
               bumps the district version. *)
            [ Op.Put (kd, District.encode dist) ]
        | Some ob, Some _ ->
            let order = Order.decode ob in
            let amount =
              List.fold_left
                (fun acc (_, b) ->
                  acc +. (Order_line.decode b).Order_line.ol_amount)
                0.0
                (sys.System.peek_range ~node
                   ~lo:(k_order_line p ~node ~wl ~d ~o ~line:0)
                   ~hi:(k_order_line p ~node ~wl ~d ~o ~line:15))
            in
            let cust =
              match view kc with
              | Some b -> Customer.decode b
              | None -> failwith "no customer"
            in
            [
              Op.Delete (k_new_order p ~node ~wl ~d ~o);
              Op.Put
                (korder, Order.encode { order with Order.o_carrier_id = 1 });
              Op.Put
                ( kc,
                  Customer.encode
                    {
                      cust with
                      Customer.c_balance = cust.Customer.c_balance +. amount;
                      c_delivery_cnt = cust.Customer.c_delivery_cnt + 1;
                    } );
              (* The district version-bump serializes deliveries; it is
                 deliberately LAST so any reader that observes the new
                 district version also observes the NEW-ORDER delete —
                 workers apply a record's ops in order. *)
              Op.Put (kd, District.encode dist);
            ]
      in
      Types.make ~host_exec_ns:1200.0 ~ship_exec:false ~read_set:[ kd; kc ]
        ~write_set:[ kd; kc ] exec

(* Stock Level (read-only, local): count recent order-line items whose
   stock is below a threshold. The spec exempts this query from
   serializability; it reads local structures directly. *)
let txn_stock_level p (sys : System.t) rng ~node =
  let wl = Rng.int rng p.warehouses_per_node in
  let d = Rng.int rng p.districts in
  let threshold = 10 + Rng.int rng 11 in
  let kd = k_district p ~node ~wl ~d in
  let exec view =
    let dist = dec_district view kd in
    let next_o = dist.District.d_next_o_id in
    let lo_o = max 1 (next_o - 20) in
    let lines =
      sys.System.peek_range ~node
        ~lo:(k_order_line p ~node ~wl ~d ~o:lo_o ~line:0)
        ~hi:(k_order_line p ~node ~wl ~d ~o:(next_o - 1) ~line:15)
    in
    let distinct = Hashtbl.create 32 in
    List.iter
      (fun (_, b) ->
        let ol = Order_line.decode b in
        Hashtbl.replace distinct ol.Order_line.ol_i_id ())
      lines;
    let low = ref 0 in
    Hashtbl.fold (fun i () acc -> i :: acc) distinct []
    |> List.sort compare
    |> List.iter (fun i ->
           match sys.System.peek ~node (k_stock ~node ~wl ~i) with
           | Some sb ->
               if (Stock.decode sb).Stock.s_quantity < threshold then incr low
           | None -> ());
    []
  in
  Types.make ~host_exec_ns:1800.0 ~ship_exec:false ~read_set:[ kd ] ~write_set:[]
    exec

(* -- Specs ----------------------------------------------------------- *)

let new_order_spec p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  let items = make_items p in
  {
    Driver.name = "tpcc-neworder";
    generate =
      (fun rng ~node -> ("new_order", txn_new_order p items ~nodes rng ~node));
  }

let spec p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  let items = make_items p in
  let hseq = Array.make nodes 0 in
  {
    Driver.name = "tpcc";
    generate =
      (fun rng ~node ->
        let r = Rng.float rng in
        if Float.compare r 0.45 < 0 then
          ("new_order", txn_new_order p items ~nodes rng ~node)
        else if Float.compare r 0.88 < 0 then begin
          hseq.(node) <- hseq.(node) + 1;
          ("payment", txn_payment p ~nodes rng ~node ~hseq:hseq.(node))
        end
        else if Float.compare r 0.92 < 0 then
          ("order_status", txn_order_status p sys rng ~node)
        else if Float.compare r 0.96 < 0 then
          ("delivery", txn_delivery p sys rng ~node)
        else ("stock_level", txn_stock_level p sys rng ~node));
  }

(* -- Consistency conditions ------------------------------------------ *)

let check_consistency p (sys : System.t) =
  let nodes = sys.System.cfg.Config.nodes in
  let fail fmt = Printf.ksprintf failwith fmt in
  for node = 0 to nodes - 1 do
    for wl = 0 to p.warehouses_per_node - 1 do
      let w =
        match sys.System.peek ~node (k_warehouse ~node ~wl) with
        | Some b -> Warehouse.decode b
        | None -> fail "missing warehouse %d.%d" node wl
      in
      let d_ytd_sum = ref 0.0 in
      for d = 0 to p.districts - 1 do
        let dist =
          match sys.System.peek ~node (k_district p ~node ~wl ~d) with
          | Some b -> District.decode b
          | None -> fail "missing district %d.%d.%d" node wl d
        in
        d_ytd_sum := !d_ytd_sum +. dist.District.d_ytd;
        (* Condition 1: d_next_o_id - 1 = max order id. *)
        let next_o = dist.District.d_next_o_id in
        let max_o =
          match
            sys.System.peek_max ~node
              ~lo:(k_order p ~node ~wl ~d ~o:0)
              ~hi:(k_order p ~node ~wl ~d ~o:((1 lsl 24) - 1))
          with
          | Some (_, b) -> (Order.decode b).Order.o_id
          | None -> 0
        in
        if max_o <> next_o - 1 then
          fail "district %d.%d.%d: next_o_id %d but max order %d" node wl d
            next_o max_o;
        (* Condition 3/4: each order has o_ol_cnt lines; NEW-ORDER rows
           correspond to undelivered orders. *)
        let orders =
          sys.System.peek_range ~node
            ~lo:(k_order p ~node ~wl ~d ~o:0)
            ~hi:(k_order p ~node ~wl ~d ~o:((1 lsl 24) - 1))
        in
        List.iter
          (fun (_, b) ->
            let order = Order.decode b in
            let o = order.Order.o_id in
            let n_lines =
              List.length
                (sys.System.peek_range ~node
                   ~lo:(k_order_line p ~node ~wl ~d ~o ~line:0)
                   ~hi:(k_order_line p ~node ~wl ~d ~o ~line:15))
            in
            if n_lines <> order.Order.o_ol_cnt then
              fail "order %d.%d.%d.%d: %d lines, expected %d" node wl d o
                n_lines order.Order.o_ol_cnt;
            let has_new_order =
              sys.System.peek ~node (k_new_order p ~node ~wl ~d ~o) <> None
            in
            let undelivered = order.Order.o_carrier_id < 0 in
            if has_new_order <> undelivered then
              fail "order %d.%d.%d.%d: new-order presence %b, delivered %b"
                node wl d o has_new_order (not undelivered))
          orders
      done;
      (* Condition 2: w_ytd = sum of district ytd. *)
      if Float.compare (abs_float (w.Warehouse.w_ytd -. !d_ytd_sum)) 0.01 > 0
      then
        fail "warehouse %d.%d: w_ytd %.2f but district sum %.2f" node wl
          w.Warehouse.w_ytd !d_ytd_sum
    done
  done
