(** Open-loop load generator with per-coordinator admission control.

    Where {!Driver} is closed-loop (a fixed number of outstanding slots,
    each issuing its next transaction the moment the previous one
    finishes — offered load adapts to service capacity), this driver is
    open-loop: arrivals follow a Poisson process at a configured offered
    rate regardless of how the system is keeping up, which is the only
    way to observe overload, queueing delay and admission shedding.

    Arrivals model a logical user population far larger than the
    connection count: each arrival belongs to one of [users] logical
    users, drawn from a sliding "active session" window that churns
    through the population over time. Per-arrival randomness derives
    from the (user, sequence) pair with {!Xenic_sim.Rng.derive}, so
    results are bit-deterministic for a seed — no wall clock anywhere.

    The run is a sequence of {!phase}s; each sets the cluster-wide
    offered rate, the Zipf skew [theta] the workload samples keys with,
    and a [hot_frac] of arrivals redirected at the workload's hot set (a
    Retwis "celebrity flash crowd" when both spike).

    Each coordinator owns a bounded admission queue
    ({!Xenic_proto.Admission}): arrivals beyond the depth limit or
    during NIC-ingress backpressure are shed at arrival, and dequeued
    requests that already outlived the deadline are dropped instead of
    serviced. Sheds are recorded in the system's metrics as aborts with
    reason {!Xenic_proto.Metrics.Shed}. Optional client-side [retries]
    re-offer aborted transactions to admission — the retry-storm
    ingredient that makes un-bounded queues metastable.

    All mutable driver state is per-coordinator and the per-coordinator
    processes are pinned to their node's partition, so the driver runs
    unchanged on windowed multi-domain engines ([partitions > 0] system
    configs under [XENIC_DOMAINS]). Membership, tracing and profiling
    are not supported here — those are armed, cross-partition features;
    use the closed-loop {!Driver} for them. *)

open Xenic_proto

(** One segment of the offered-load schedule. *)
type phase = {
  duration_ns : float;  (** phase length in simulated ns, > 0 *)
  rate_tps : float;  (** cluster-wide offered load, txns/s, > 0 *)
  theta : float;  (** Zipf skew for key sampling during this phase *)
  hot_frac : float;
      (** fraction of arrivals aimed at the workload's hot set,
          in [0, 1] *)
}

(** An open-loop workload. [make] is called once per coordinator before
    the run starts, so any state it allocates (e.g. a {!Zipf.cache}) is
    owned by that coordinator alone — never shared across partitions.
    The returned generator builds one transaction from the arrival's
    derived RNG, the current phase's [theta], and whether this arrival
    targets the hot set. *)
type workload = {
  name : string;
  make :
    nodes:int ->
    node:int ->
    (Xenic_sim.Rng.t -> theta:float -> hot:bool -> string * Types.t);
}

(** Per-phase arrival accounting (whole run, warmup included; outcomes
    are attributed to the phase the request {e arrived} in, which is
    what makes recovery — or metastable non-recovery — after a burst
    visible in the post-burst phase's numbers). Completions landing
    after the arrival schedule ends are NOT counted anywhere in the
    driver's statistics: backlog the system only manages to serve
    during the post-run drain is lost goodput, not goodput — without
    this cutoff an unbounded queue would look as good as a bounded one
    once the run drains. (The system's own metrics still record every
    outcome.) *)
type phase_stat = {
  p_offered : int;
  p_admitted : int;
  p_committed : int;
  p_aborted : int;  (** protocol aborts (after any retries) *)
  p_shed : int;  (** all causes, arrival sheds + deadline drops *)
}

type result = {
  offered : int;  (** arrivals inside the measurement window *)
  admitted : int;
  committed : int;
  aborted : int;  (** protocol aborts (non-shed, after retries) *)
  retried : int;  (** client-side retry re-submissions *)
  shed : (string * int) list;
      (** window shed count per {!Admission.cause}, in
          {!Admission.all_causes} order *)
  shed_total : int;
  goodput_tps : float;  (** cluster-wide committed/s over the window *)
  median_latency_us : float;
      (** arrival-to-commit (queue wait included) *)
  p99_latency_us : float;
  duration_ns : float;  (** measurement window length *)
  per_phase : phase_stat array;
  metrics : Metrics.t;
      (** window-only driver metrics (commit/abort classes + arrival
          latencies); sheds are not recorded here — read them from the
          [shed] fields or the system's own metrics *)
}

(** [run sys wl ~phases] drives [wl] through the phase schedule and
    returns window statistics. [warmup_ns] excludes the run prefix from
    the window (phase stats still count it). [admission] configures
    every coordinator's queue ({!Admission.unlimited} by default).
    [service_slots] is the number of request-serving processes per
    coordinator; [retries] the client-side re-submissions per aborted
    transaction (0 by default). [users], [active_frac] and
    [churn_period_ns] shape the logical population and its session
    churn. [coordinators] defaults to every node.

    [telemetry] attaches a windowed flight recorder sharing the run's
    accounting cutoff (the end of the arrival schedule): offered /
    admitted / shed arrivals, queue-depth samples and coordinator
    ingress-occupancy integrals stream in from the driver, commits and
    aborts from the system, and everything landing during the
    post-schedule drain is dropped. The recorder is sealed and
    detached before [run] returns. *)
val run :
  ?seed:int64 ->
  ?warmup_ns:float ->
  ?admission:Admission.config ->
  ?service_slots:int ->
  ?retries:int ->
  ?users:int ->
  ?active_frac:float ->
  ?churn_period_ns:float ->
  ?coordinators:int ->
  ?telemetry:Xenic_telemetry.Telemetry.t ->
  System.t ->
  workload ->
  phases:phase list ->
  result
