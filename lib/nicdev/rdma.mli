(** RDMA NIC model (Mellanox CX5): one-sided READ / WRITE / ATOMIC
    verbs handled entirely by NIC hardware, and two-sided SEND/RECV for
    RPC messaging.

    A one-sided verb never consumes target CPU: the target NIC parses
    the request, performs a PCIe access against host memory, and
    responds. The simulation runs the caller-provided [at_target]
    closure at the instant the target NIC performs the memory access —
    the verb's linearization point — so reads, writes and
    compare-and-swap take effect against the real data structures with
    correct timing. *)

type 'm t

type verb = Read | Write | Cas

val create : 'm Xenic_net.Fabric.t -> 'm t

val hw : 'm t -> Xenic_params.Hw.t

(** [one_sided t ~src ~dst verb ~bytes ~at_target] issues one verb and
    blocks until completion, returning [at_target]'s result.
    [pay_submit] (default true) charges the initiator doorbell cost;
    doorbell batching amortizes it across a batch. *)
val one_sided :
  ?pay_submit:bool ->
  'm t ->
  src:int ->
  dst:int ->
  verb ->
  bytes:int ->
  at_target:(unit -> 'a) ->
  'a

(** [one_sided_many t ~src verbs] issues a batch behind one doorbell,
    in parallel, and blocks until all complete. *)
val one_sided_many :
  'm t ->
  src:int ->
  (int * verb * int * (unit -> 'a)) list ->
  'a list

(** [rpc_send t ~src ~dst ~bytes msg] transmits a two-sided SEND caring
    [msg]; the target's dispatch loop must call {!rpc_recv_cost} before
    handling it (receive-buffer DMA + completion handling). *)
val rpc_send : ?pay_submit:bool -> 'm t -> src:int -> dst:int -> bytes:int -> 'm -> unit

(** Blocking: target-side receive cost for one two-sided message. *)
val rpc_recv_cost : 'm t -> node:int -> unit

(** Verbs issued, by kind, for accounting. *)
val verbs_issued : 'm t -> int

(** Instantaneous load on [node]'s NIC processing unit: slots held plus
    waiters queued behind the (single-server) unit, so 0 = idle, 1 =
    busy, > 1 = backlog. The ingress-occupancy signal admission control
    samples. *)
val unit_busy : 'm t -> node:int -> int

(** The per-node NIC processing units, for the profiler. Names are
    node-unique ([rdma<n>]). *)
val resources : 'm t -> Xenic_sim.Resource.t list

(** {2 Gray-failure injection}

    Per-node degradation knobs for scenario runs. Slot [node] is only
    read by work running at that node, so mutations must run as engine
    events at that node to stay partition-safe. *)

(** [set_slowdown t ~node f] multiplies [node]'s NIC-unit service time
    by [f >= 1]; [1.0] restores nominal speed. *)
val set_slowdown : 'm t -> node:int -> float -> unit

(** [degrade_unit t ~node ~dur_ns] stalls [node]'s (single-server) NIC
    processing unit for [dur_ns] via the ordinary resource accounting.
    Must be called from an event/process at that node. *)
val degrade_unit : 'm t -> node:int -> dur_ns:float -> unit
