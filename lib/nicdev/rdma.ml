open Xenic_sim
open Xenic_net

type verb = Read | Write | Cas

type 'm t = {
  fabric : 'm Fabric.t;
  hw : Xenic_params.Hw.t;
  units : Resource.t array;  (* per-node NIC processing unit *)
  slow : float array;
      (* gray-failure multiplier on each node's NIC unit service time
         (>= 1); slot [n] is only read by work running at node [n], so
         mutations scheduled as events at that node are partition-safe *)
  verbs_arr : int array;
      (* verb count sharded by initiator node, so issuing is race-free
         under the windowed parallel engine; the total is a sum *)
}

(* Wire header sizes for verbs: transport + RETH/AETH-style headers. *)
let req_header_b = 28

let resp_header_b = 16

let cas_payload_b = 16

let create fabric =
  let hw = Fabric.hw fabric in
  {
    fabric;
    hw;
    units =
      Array.init (Fabric.nodes fabric) (fun i ->
          Resource.create (Fabric.engine fabric)
            ~name:(Printf.sprintf "rdma%d" i)
            ~servers:1);
    slow = Array.make (Fabric.nodes fabric) 1.0;
    verbs_arr = Array.make (Fabric.nodes fabric) 0;
  }

(* NIC-unit service time at [node] under the current degradation. *)
let unit_ns t ~node = t.hw.rdma_hw_op_ns *. t.slow.(node)

let set_slowdown t ~node factor =
  if Float.compare factor 1.0 < 0 then
    invalid_arg "Rdma.set_slowdown: factor must be >= 1";
  t.slow.(node) <- factor

(* Stall [node]'s NIC processing unit for [dur_ns]: the holder occupies
   the single unit through the ordinary resource accounting, so queueing
   and occupancy gauges see the degradation. *)
let degrade_unit t ~node ~dur_ns =
  if Float.compare dur_ns 0.0 <= 0 then
    invalid_arg "Rdma.degrade_unit: dur_ns must be > 0";
  Process.spawn (Fabric.engine t.fabric) (fun () ->
      Resource.use t.units.(node) dur_ns)

let hw t = t.hw

let engine t = Fabric.engine t.fabric

let request_bytes t verb ~bytes =
  ignore t;
  match verb with
  | Read -> req_header_b
  | Write -> req_header_b + bytes
  | Cas -> req_header_b + cas_payload_b

let response_bytes t verb ~bytes =
  ignore t;
  match verb with
  | Read -> resp_header_b + bytes
  | Write -> resp_header_b
  | Cas -> resp_header_b + 8

let target_pcie_ns t = function
  | Read -> t.hw.rdma_target_read_pcie_ns
  | Write -> t.hw.rdma_target_write_pcie_ns
  | Cas ->
      (* CAS is a PCIe read-modify-write on host memory. *)
      t.hw.rdma_target_read_pcie_ns +. (0.5 *. t.hw.rdma_target_write_pcie_ns)

let one_sided ?(pay_submit = true) t ~src ~dst verb ~bytes ~at_target =
  t.verbs_arr.(src) <- t.verbs_arr.(src) + 1;
  if pay_submit then Process.sleep (engine t) t.hw.rdma_submit_ns;
  Resource.use t.units.(src) (unit_ns t ~node:src);
  Fabric.transfer t.fabric ~src ~dst
    ~payload_bytes:(request_bytes t verb ~bytes);
  Resource.use t.units.(dst) (unit_ns t ~node:dst);
  Process.sleep (engine t) (target_pcie_ns t verb);
  let result = at_target () in
  Fabric.transfer t.fabric ~src:dst ~dst:src
    ~payload_bytes:(response_bytes t verb ~bytes);
  Resource.use t.units.(src) (unit_ns t ~node:src);
  Process.sleep (engine t) t.hw.rdma_completion_poll_ns;
  result

let one_sided_many t ~src verbs =
  match verbs with
  | [] -> []
  | (dst, verb, bytes, at_target) :: rest ->
      let first () =
        one_sided t ~src ~dst verb ~bytes ~at_target ~pay_submit:true
      in
      let others =
        List.map
          (fun (dst, verb, bytes, at_target) () ->
            one_sided t ~src ~dst verb ~bytes ~at_target ~pay_submit:false)
          rest
      in
      Process.parallel (engine t) (first :: others)

let rpc_send ?(pay_submit = true) t ~src ~dst ~bytes msg =
  t.verbs_arr.(src) <- t.verbs_arr.(src) + 1;
  if pay_submit then Process.sleep (engine t) t.hw.rdma_submit_ns;
  Resource.use t.units.(src) (unit_ns t ~node:src);
  Fabric.send t.fabric ~src ~dst ~payload_bytes:(req_header_b + bytes) [ msg ]

let rpc_recv_cost t ~node =
  (* Target NIC DMA-writes the receive buffer, then the polling host
     thread picks it up. *)
  Resource.use t.units.(node) (unit_ns t ~node);
  Process.sleep (engine t) t.hw.rdma_target_write_pcie_ns

let verbs_issued t = Array.fold_left ( + ) 0 t.verbs_arr

let unit_busy t ~node =
  Resource.in_use t.units.(node) + Resource.queue_length t.units.(node)

let resources t = Array.to_list t.units
