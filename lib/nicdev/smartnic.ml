open Xenic_sim

type t = {
  engine : Engine.t;
  hw : Xenic_params.Hw.t;
  cores : Resource.t;
  pkt_io_path : Resource.t;
  dma : Xenic_pcie.Dma.t;
  mutable slowdown : float;
      (* gray-failure multiplier on NIC-side service times (>= 1);
         per-device and only read by events at this device's node, so
         partition-safe when mutations run as events at that node *)
}

let create ?cores engine (hw : Xenic_params.Hw.t) =
  let n_cores = match cores with Some n -> n | None -> hw.nic_cores in
  {
    engine;
    hw;
    cores = Resource.create engine ~name:"nic-cores" ~servers:n_cores;
    pkt_io_path = Resource.create engine ~name:"nic-pkt-io" ~servers:1;
    dma = Xenic_pcie.Dma.create engine hw;
    slowdown = 1.0;
  }

let set_slowdown t factor =
  if Float.compare factor 1.0 < 0 then
    invalid_arg "Smartnic.set_slowdown: factor must be >= 1";
  t.slowdown <- factor

let slowdown t = t.slowdown

(* Take [n] SoC cores out of service for [dur_ns]: each holder occupies
   one core like any unit of work, so queueing, utilization gauges and
   the ingress-occupancy backpressure signal all see the degradation
   through the ordinary resource accounting. At least one core is left
   serving. *)
let degrade_cores t ~n ~dur_ns =
  if Float.compare dur_ns 0.0 <= 0 then
    invalid_arg "Smartnic.degrade_cores: dur_ns must be > 0";
  let n = min n (Resource.servers t.cores - 1) in
  for _ = 1 to n do
    Process.spawn t.engine (fun () -> Resource.use t.cores dur_ns)
  done

let engine t = t.engine

let hw t = t.hw

let cores t = t.cores

let dma t = t.dma

let pkt_io t = Resource.use t.pkt_io_path (t.hw.nic_pkt_io_ns *. t.slowdown)

let op_cost ?(ops = 1) t ~bytes =
  ((float_of_int ops *. t.hw.nic_core_op_ns)
  +. (float_of_int bytes *. t.hw.nic_core_byte_ns))
  *. t.slowdown

let core_work ?ops t ~bytes = Resource.use t.cores (op_cost ?ops t ~bytes)

let core_work_held ?ops t ~bytes = Process.sleep t.engine (op_cost ?ops t ~bytes)

let mem_access t = Process.sleep t.engine (t.hw.nic_mem_access_ns *. t.slowdown)

let host_msg t = Process.sleep t.engine t.hw.host_nic_msg_ns

let scaled_exec_ns t host_ns = host_ns /. t.hw.nic_core_speed_ratio

let core_utilization t = Resource.utilization t.cores

(* Instantaneous ingress pressure: the most loaded of the SoC core
   pool, the packet-I/O path and the DMA queues, where 1.0 means every
   server busy and > 1.0 means a backlog is queueing behind them. *)
let ingress_occupancy t =
  let frac r =
    float_of_int (Resource.in_use r + Resource.queue_length r)
    /. float_of_int (Resource.servers r)
  in
  Float.max (frac t.cores)
    (Float.max (frac t.pkt_io_path) (Xenic_pcie.Dma.occupancy t.dma))

let resources t = [ t.cores; t.pkt_io_path ] @ Xenic_pcie.Dma.resources t.dma
