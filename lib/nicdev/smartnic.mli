(** On-path SmartNIC device model (LiquidIO 3): SoC cores on the packet
    data path, a packet-I/O path with a serialized per-frame cost, a
    PCIe DMA engine, and a host<->NIC message path over PCIe rings.

    The protocol layer composes these resources into dispatch loops; the
    model only prices the hardware. All costs come from
    {!Xenic_params.Hw}. *)

type t

val create :
  ?cores:int -> Xenic_sim.Engine.t -> Xenic_params.Hw.t -> t

val engine : t -> Xenic_sim.Engine.t

val hw : t -> Xenic_params.Hw.t

(** The SoC core pool. Handlers acquire a core for their compute. *)
val cores : t -> Xenic_sim.Resource.t

val dma : t -> Xenic_pcie.Dma.t

(** Blocking: pay the serialized packet RX/TX path cost for one frame. *)
val pkt_io : t -> unit

(** Blocking: occupy a core for a protocol operation touching [bytes]
    of payload. [ops] scales the base per-op cost (default 1). *)
val core_work : ?ops:int -> t -> bytes:int -> unit

(** Blocking: hold an already-acquired core for the same duration; for
    handlers that manage core acquisition themselves. *)
val core_work_held : ?ops:int -> t -> bytes:int -> unit

(** NIC-local DRAM access cost (caching-index hit). *)
val mem_access : t -> unit

(** Blocking: cross between host and NIC over the PCIe message rings
    (one way). The cost a host-initiated operation pays that a
    NIC-resident one avoids (Fig 2). *)
val host_msg : t -> unit

(** Compute time on a NIC core for work that costs [host_ns] on a host
    core, scaled by the Table 1 per-thread speed ratio. *)
val scaled_exec_ns : t -> float -> float

(** Aggregate core utilization in [0, 1]. *)
val core_utilization : t -> float

(** Instantaneous ingress pressure: the most loaded of the core pool,
    packet-I/O path and DMA queues ((busy + queued) / servers, so
    > 1.0 means a backlog). The signal admission control samples. *)
val ingress_occupancy : t -> float

(** Core pool, packet-I/O path and DMA resources of this NIC, for the
    profiler. Names are per-device; callers must node-prefix them. *)
val resources : t -> Xenic_sim.Resource.t list

(** {2 Gray-failure injection}

    Per-device degradation knobs for scenario runs. Each device belongs
    to one node, so the state is partition-local by construction;
    mutations must run as engine events at that node. *)

(** [set_slowdown t f] multiplies NIC-side service times (core ops,
    packet I/O, NIC DRAM) by [f >= 1]; [1.0] restores nominal speed.
    Raises [Invalid_argument] on [f < 1]. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float

(** [degrade_cores t ~n ~dur_ns] takes [min n (cores-1)] SoC cores out
    of service for [dur_ns] by occupying them through the ordinary
    resource accounting (so utilization and ingress-occupancy gauges see
    the degradation). Must be called from an event/process at this
    device's node. Raises [Invalid_argument] on [dur_ns <= 0]. *)
val degrade_cores : t -> n:int -> dur_ns:float -> unit
