(** Run a scenario end to end on any stack, under the full safety net.

    The harness owns the boilerplate the corpus tests and the fuzzer
    share: build a system (strict engine — the sanitizer is always
    on), load a workload, attach a serializability oracle, inject the
    scenario, drive it, and check the oracle before reporting. A
    closed-loop scenario ([phases = []]) runs Smallbank under
    [Driver.run]; crash scenarios arm per-request timeouts and a
    lease-based membership exactly like the fault tests. An open-loop
    scenario runs Retwis through [Openloop.run] on a partitioned
    system ([partitions = 2]), so [XENIC_DOMAINS] exercises the
    windowed parallel engine. *)

type stack = Xenic | Drtmh | Drtmh_nc | Fasst | Drtmr | Farm

val all_stacks : stack list

val stack_name : stack -> string

val stack_of_string : string -> stack option

type outcome = {
  committed : int;
  aborted : int;
  oracle_txns : int;
  digest : string;
      (** Lossless ([%h] floats, every counter): equal digests mean
          bit-identical runs. *)
  counters : (string * float) list;
}

val counter : outcome -> string -> float

(** [run ~stack ~seed scn] validates, injects and drives [scn],
    raising [Failure] on a serializability violation. [domains] is the
    engine's domain budget (default: [XENIC_DOMAINS], or 1);
    closed-loop digests are domain-count-invariant (exact-order
    engine), open-loop ones likewise (windowed engine, 2 partitions).
    [concurrency]/[target] shape the closed-loop run only. Requires
    [max_concurrent_crashes < replication] (= 3, or [nodes] if
    smaller). *)
val run :
  ?domains:int ->
  ?concurrency:int ->
  ?target:int ->
  stack:stack ->
  seed:int64 ->
  Scenario.t ->
  outcome
