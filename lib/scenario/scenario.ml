open Xenic_sim
open Xenic_proto

type action =
  | Crash of int
  | Recover of int
  | Cut of { froms : int list; tos : int list }
  | Heal
  | Loss of { src : int; dst : int; p : float }
  | Delay of { src : int; dst : int; factor : float }
  | Slow_nic of { node : int; factor : float }
  | Degrade_cores of { node : int; n : int; dur_ns : float }

type event = { at_ns : float; action : action }

type phase = {
  dur_ns : float;
  rate_tps : float;
  theta : float;
  hot_frac : float;
}

type t = {
  name : string;
  nodes : int;
  rto_ns : float;
  events : event list;
  phases : phase list;
}

let sort_events evs =
  List.stable_sort (fun a b -> Float.compare a.at_ns b.at_ns) evs

let make ~name ~nodes ?(rto_ns = 1_000.0) ?(phases = []) events =
  { name; nodes; rto_ns; events = sort_events events; phases }

(* ------------------------------------------------------------------ *)
(* Shape predicates *)

let has_crashes t =
  List.exists (fun e -> match e.action with Crash _ -> true | _ -> false)
    t.events

let has_recovers t =
  List.exists (fun e -> match e.action with Recover _ -> true | _ -> false)
    t.events

let has_link_faults t =
  List.exists
    (fun e ->
      match e.action with
      | Cut _ | Heal | Loss _ | Delay _ -> true
      | _ -> false)
    t.events

let has_phases t = t.phases <> []

let max_concurrent_crashes t =
  let down = ref 0 and peak = ref 0 in
  List.iter
    (fun e ->
      match e.action with
      | Crash _ ->
          incr down;
          if !down > !peak then peak := !down
      | Recover _ -> decr down
      | _ -> ())
    t.events;
  !peak

(* ------------------------------------------------------------------ *)
(* Validation *)

(* Protocol-safety bounds for scenarios that run with request timeouts
   armed (crash/recover present). An armed stack's correctness
   reasoning assumes a firing timeout implies a dead peer, so gray
   delay added on top of the nominal round trip must stay well under
   the timeout slack: retransmit cost is capped at
   [Fabric.max_retransmits * rto_ns] per hop and delay factors at 2x
   the wire latency. Cuts and NIC degradation (unbounded added latency)
   are excluded outright on armed scenarios. *)
let armed_max_retx_cost_ns = 5_000.0

let armed_max_delay_factor = 2.0

let max_delay_factor = 64.0

let max_slow_factor = 64.0

let max_loss_p = 0.9

let max_degrade_dur_ns = 10e6

let name_ok s =
  String.length s > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       s

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_node what n =
    if n < 0 || n >= t.nodes then
      Some (Printf.sprintf "%s: node %d out of range [0, %d)" what n t.nodes)
    else None
  in
  let check_endpoint what n =
    if n = -1 then None else check_node what n
  in
  let rec first_err = function
    | [] -> None
    | Some e :: _ -> Some e
    | None :: rest -> first_err rest
  in
  if not (name_ok t.name) then
    err "scenario name %S: must be nonempty [A-Za-z0-9._-]" t.name
  else if t.nodes < 2 then err "nodes = %d: need at least 2" t.nodes
  else if not (Float.is_finite t.rto_ns) || Float.compare t.rto_ns 0.0 <= 0
  then err "rto-ns %g: must be finite and > 0" t.rto_ns
  else begin
    let armed = has_crashes t in
    let crashed = Array.make t.nodes false in
    let problem =
      List.fold_left
        (fun acc e ->
          match acc with
          | Some _ -> acc
          | None ->
              if
                (not (Float.is_finite e.at_ns))
                || Float.compare e.at_ns 0.0 < 0
              then Some (Printf.sprintf "event time %g: must be >= 0" e.at_ns)
              else begin
                match e.action with
                | Crash n -> (
                    match check_node "crash" n with
                    | Some _ as s -> s
                    | None ->
                        if crashed.(n) then
                          Some
                            (Printf.sprintf "crash %d: already crashed" n)
                        else begin
                          crashed.(n) <- true;
                          if Array.for_all (fun b -> b) crashed then
                            Some "crash: every node down at once"
                          else None
                        end)
                | Recover n -> (
                    match check_node "recover" n with
                    | Some _ as s -> s
                    | None ->
                        if not crashed.(n) then
                          Some
                            (Printf.sprintf "recover %d: not crashed here" n)
                        else begin
                          crashed.(n) <- false;
                          None
                        end)
                | Cut { froms; tos } ->
                    if armed then
                      Some
                        "cut: not allowed with crash events (armed \
                         timeouts would fire on reachable peers)"
                    else if froms = [] || tos = [] then
                      Some "cut: empty group"
                    else
                      first_err
                        (List.map (check_node "cut") (froms @ tos))
                | Heal ->
                    if armed then
                      Some "heal: not allowed with crash events"
                    else None
                | Loss { src; dst; p } ->
                    if
                      (not (Float.is_finite p))
                      || Float.compare p 0.0 < 0
                      || Float.compare p max_loss_p > 0
                    then
                      Some
                        (Printf.sprintf "loss p %g: must be in [0, %g]" p
                           max_loss_p)
                    else
                      first_err
                        [
                          check_endpoint "loss src" src;
                          check_endpoint "loss dst" dst;
                        ]
                | Delay { src; dst; factor } ->
                    let cap =
                      if armed then armed_max_delay_factor
                      else max_delay_factor
                    in
                    if
                      (not (Float.is_finite factor))
                      || Float.compare factor 1.0 < 0
                      || Float.compare factor cap > 0
                    then
                      Some
                        (Printf.sprintf
                           "delay factor %g: must be in [1, %g]%s" factor cap
                           (if armed then " (armed scenario)" else ""))
                    else
                      first_err
                        [
                          check_endpoint "delay src" src;
                          check_endpoint "delay dst" dst;
                        ]
                | Slow_nic { node; factor } ->
                    if armed then
                      Some
                        "slow-nic: not allowed with crash events (armed \
                         timeouts would fire on live peers)"
                    else if
                      (not (Float.is_finite factor))
                      || Float.compare factor 1.0 < 0
                      || Float.compare factor max_slow_factor > 0
                    then
                      Some
                        (Printf.sprintf "slow-nic factor %g: must be in [1, %g]"
                           factor max_slow_factor)
                    else check_node "slow-nic" node
                | Degrade_cores { node; n; dur_ns } ->
                    if armed then
                      Some "degrade-cores: not allowed with crash events"
                    else if n < 1 then
                      Some (Printf.sprintf "degrade-cores n %d: must be >= 1" n)
                    else if
                      (not (Float.is_finite dur_ns))
                      || Float.compare dur_ns 0.0 <= 0
                      || Float.compare dur_ns max_degrade_dur_ns > 0
                    then
                      Some
                        (Printf.sprintf
                           "degrade-cores dur %g: must be in (0, %g]" dur_ns
                           max_degrade_dur_ns)
                    else check_node "degrade-cores" node
              end)
        None t.events
    in
    match problem with
    | Some m -> Error m
    | None ->
        let loss_present =
          List.exists
            (fun e ->
              match e.action with
              | Loss { p; _ } -> Float.compare p 0.0 > 0
              | _ -> false)
            t.events
        in
        if
          armed && loss_present
          && Float.compare
               (float_of_int Xenic_net.Fabric.max_retransmits *. t.rto_ns)
               armed_max_retx_cost_ns
             > 0
        then
          err
            "armed scenario with loss: max_retransmits * rto-ns = %g \
             exceeds %g (would risk spurious timeouts)"
            (float_of_int Xenic_net.Fabric.max_retransmits *. t.rto_ns)
            armed_max_retx_cost_ns
        else if armed && t.phases <> [] then
          err "open-loop scenario cannot contain crash/recover events"
        else begin
          let bad_phase =
            List.find_opt
              (fun p ->
                (not (Float.is_finite p.dur_ns))
                || Float.compare p.dur_ns 0.0 <= 0
                || (not (Float.is_finite p.rate_tps))
                || Float.compare p.rate_tps 0.0 <= 0
                || (not (Float.is_finite p.theta))
                || Float.compare p.theta 0.0 < 0
                || Float.compare p.theta 1.0 >= 0
                || (not (Float.is_finite p.hot_frac))
                || Float.compare p.hot_frac 0.0 < 0
                || Float.compare p.hot_frac 1.0 > 0)
              t.phases
          in
          match bad_phase with
          | Some p ->
              err "phase (%g %g %g %g): dur/rate must be > 0, theta in \
                   [0, 1), hot_frac in [0, 1]"
                p.dur_ns p.rate_tps p.theta p.hot_frac
          | None -> Ok ()
        end
  end

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "scenario %s: %s" t.name m)

(* ------------------------------------------------------------------ *)
(* Text form: a minimal s-expression reader/printer. *)

type sexp = Atom of string | L of sexp list

let tokenize s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  while !i < n do
    (match s.[!i] with
    | '(' | ')' ->
        flush ();
        toks := String.make 1 s.[!i] :: !toks
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | ';' ->
        flush ();
        while !i < n && s.[!i] <> '\n' do
          incr i
        done
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

let parse_sexp s =
  let rec one = function
    | [] -> Error "unexpected end of input"
    | "(" :: rest ->
        let rec items acc = function
          | ")" :: rest -> Ok (L (List.rev acc), rest)
          | [] -> Error "missing )"
          | toks -> (
              match one toks with
              | Ok (x, rest) -> items (x :: acc) rest
              | Error _ as e -> e)
        in
        items [] rest
    | ")" :: _ -> Error "unexpected )"
    | a :: rest -> Ok (Atom a, rest)
  and items acc = function
    | [] -> Ok (List.rev acc)
    | toks -> (
        match one toks with
        | Ok (x, rest) -> items (x :: acc) rest
        | Error _ as e -> e)
  in
  items [] (tokenize s)

let float_str f =
  let s = Printf.sprintf "%g" f in
  if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

let endpoint_str n = if n = -1 then "*" else string_of_int n

let action_to_sexp = function
  | Crash n -> Printf.sprintf "(crash %d)" n
  | Recover n -> Printf.sprintf "(recover %d)" n
  | Cut { froms; tos } ->
      Printf.sprintf "(cut (%s) (%s))"
        (String.concat " " (List.map string_of_int froms))
        (String.concat " " (List.map string_of_int tos))
  | Heal -> "(heal)"
  | Loss { src; dst; p } ->
      Printf.sprintf "(loss %s %s %s)" (endpoint_str src) (endpoint_str dst)
        (float_str p)
  | Delay { src; dst; factor } ->
      Printf.sprintf "(delay %s %s %s)" (endpoint_str src) (endpoint_str dst)
        (float_str factor)
  | Slow_nic { node; factor } ->
      Printf.sprintf "(slow-nic %d %s)" node (float_str factor)
  | Degrade_cores { node; n; dur_ns } ->
      Printf.sprintf "(degrade-cores %d %d %s)" node n (float_str dur_ns)

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "(scenario\n";
  Buffer.add_string b (Printf.sprintf "  (name %s)\n" t.name);
  Buffer.add_string b (Printf.sprintf "  (nodes %d)\n" t.nodes);
  Buffer.add_string b (Printf.sprintf "  (rto-ns %s)\n" (float_str t.rto_ns));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  (at %s %s)\n" (float_str e.at_ns)
           (action_to_sexp e.action)))
    t.events;
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf "  (phase %s %s %s %s)\n" (float_str p.dur_ns)
           (float_str p.rate_tps) (float_str p.theta) (float_str p.hot_frac)))
    t.phases;
  Buffer.add_string b ")\n";
  Buffer.contents b

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad number %S" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: bad integer %S" what s)

let parse_endpoint what s =
  if s = "*" then Ok (-1) else parse_int what s

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_int_list what l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      match x with
      | Atom a ->
          let* i = parse_int what a in
          Ok (i :: acc)
      | L _ -> Error (Printf.sprintf "%s: expected integer" what))
    (Ok []) l
  |> Result.map List.rev

let parse_action = function
  | L [ Atom "crash"; Atom n ] ->
      let* n = parse_int "crash" n in
      Ok (Crash n)
  | L [ Atom "recover"; Atom n ] ->
      let* n = parse_int "recover" n in
      Ok (Recover n)
  | L [ Atom "cut"; L froms; L tos ] ->
      let* froms = parse_int_list "cut" froms in
      let* tos = parse_int_list "cut" tos in
      Ok (Cut { froms; tos })
  | L [ Atom "heal" ] -> Ok Heal
  | L [ Atom "loss"; Atom src; Atom dst; Atom p ] ->
      let* src = parse_endpoint "loss src" src in
      let* dst = parse_endpoint "loss dst" dst in
      let* p = parse_float "loss p" p in
      Ok (Loss { src; dst; p })
  | L [ Atom "delay"; Atom src; Atom dst; Atom f ] ->
      let* src = parse_endpoint "delay src" src in
      let* dst = parse_endpoint "delay dst" dst in
      let* factor = parse_float "delay factor" f in
      Ok (Delay { src; dst; factor })
  | L [ Atom "slow-nic"; Atom n; Atom f ] ->
      let* node = parse_int "slow-nic" n in
      let* factor = parse_float "slow-nic factor" f in
      Ok (Slow_nic { node; factor })
  | L [ Atom "degrade-cores"; Atom node; Atom n; Atom dur ] ->
      let* node = parse_int "degrade-cores node" node in
      let* n = parse_int "degrade-cores n" n in
      let* dur_ns = parse_float "degrade-cores dur" dur in
      Ok (Degrade_cores { node; n; dur_ns })
  | sx ->
      Error
        (Printf.sprintf "unknown action %s"
           (match sx with
           | Atom a -> a
           | L (Atom a :: _) -> Printf.sprintf "(%s ...)" a
           | L _ -> "(...)"))

let of_string s =
  match parse_sexp s with
  | Error _ as e -> e
  | Ok [ L (Atom "scenario" :: body) ] ->
      let name = ref None
      and nodes = ref None
      and rto_ns = ref 1_000.0
      and events = ref []
      and phases = ref [] in
      let result =
        List.fold_left
          (fun acc form ->
            let* () = acc in
            match form with
            | L [ Atom "name"; Atom n ] ->
                name := Some n;
                Ok ()
            | L [ Atom "nodes"; Atom n ] ->
                let* n = parse_int "nodes" n in
                nodes := Some n;
                Ok ()
            | L [ Atom "rto-ns"; Atom r ] ->
                let* r = parse_float "rto-ns" r in
                rto_ns := r;
                Ok ()
            | L [ Atom "at"; Atom time; act ] ->
                let* at_ns = parse_float "at" time in
                let* action = parse_action act in
                events := { at_ns; action } :: !events;
                Ok ()
            | L [ Atom "phase"; Atom d; Atom r; Atom th; Atom h ] ->
                let* dur_ns = parse_float "phase dur" d in
                let* rate_tps = parse_float "phase rate" r in
                let* theta = parse_float "phase theta" th in
                let* hot_frac = parse_float "phase hot_frac" h in
                phases := { dur_ns; rate_tps; theta; hot_frac } :: !phases;
                Ok ()
            | L (Atom a :: _) ->
                Error (Printf.sprintf "unknown scenario form (%s ...)" a)
            | _ -> Error "unknown scenario form")
          (Ok ()) body
      in
      let* () = result in
      let* name =
        match !name with Some n -> Ok n | None -> Error "missing (name ...)"
      in
      let* nodes =
        match !nodes with
        | Some n -> Ok n
        | None -> Error "missing (nodes ...)"
      in
      Ok
        (make ~name ~nodes ~rto_ns:!rto_ns ~phases:(List.rev !phases)
           (List.rev !events))
  | Ok _ -> Error "expected a single (scenario ...) form"

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> (
      match of_string s with
      | Ok _ as ok -> ok
      | Error m -> Error (Printf.sprintf "%s: %s" path m))
  | exception Sys_error m -> Error m

let save_file path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t))

(* ------------------------------------------------------------------ *)
(* Compilation onto a run *)

let all_nodes t = List.init t.nodes (fun i -> i)

let expand_endpoint t n = if n = -1 then all_nodes t else [ n ]

(* Schedule one injection as engine events. Link state is sharded by
   source node, so a directive touching several sources becomes one
   event per source, tagged [~node:src] — each runs on the partition
   that owns the row it mutates. NIC directives run at their node.
   Crash/recover are untagged, exactly like the legacy [Driver.run
   ~faults] path (closed-loop runs use exact-order engines, where tags
   only choose the executing domain, not the order). *)
let schedule_action t (sys : System.t) ~at action =
  let engine = sys.System.engine in
  match action with
  | Crash n -> Engine.at engine at (fun () -> sys.System.crash_node ~node:n)
  | Recover n -> Engine.at engine at (fun () -> sys.System.recover_node ~node:n)
  | Cut { froms; tos } ->
      List.iter
        (fun src ->
          Engine.at ~node:src engine at (fun () ->
              List.iter
                (fun dst ->
                  if dst <> src then sys.System.net_set_cut ~src ~dst true)
                tos))
        froms
  | Heal ->
      List.iter
        (fun src ->
          Engine.at ~node:src engine at (fun () ->
              List.iter
                (fun dst ->
                  if dst <> src then sys.System.net_set_cut ~src ~dst false)
                (all_nodes t)))
        (all_nodes t)
  | Loss { src; dst; p } ->
      List.iter
        (fun src ->
          let dsts =
            List.filter (fun d -> d <> src) (expand_endpoint t dst)
          in
          Engine.at ~node:src engine at (fun () ->
              List.iter
                (fun dst -> sys.System.net_set_loss ~src ~dst p)
                dsts))
        (expand_endpoint t src)
  | Delay { src; dst; factor } ->
      List.iter
        (fun src ->
          let dsts =
            List.filter (fun d -> d <> src) (expand_endpoint t dst)
          in
          Engine.at ~node:src engine at (fun () ->
              List.iter
                (fun dst -> sys.System.net_set_delay ~src ~dst factor)
                dsts))
        (expand_endpoint t src)
  | Slow_nic { node; factor } ->
      Engine.at ~node engine at (fun () ->
          sys.System.set_nic_slowdown ~node factor)
  | Degrade_cores { node; n; dur_ns } ->
      Engine.at ~node engine at (fun () ->
          sys.System.degrade_nic_cores ~node ~n ~dur_ns)

let inject t (sys : System.t) ~seed =
  validate_exn t;
  let sys_nodes = sys.System.cfg.Xenic_cluster.Config.nodes in
  if t.nodes <> sys_nodes then
    invalid_arg
      (Printf.sprintf "Scenario.inject %s: scenario is for %d nodes, system \
                       has %d"
         t.name t.nodes sys_nodes);
  if has_link_faults t then
    sys.System.net_enable_faults ~seed ~rto_ns:t.rto_ns;
  let start = Engine.now sys.System.engine in
  List.iter
    (fun e -> schedule_action t sys ~at:(start +. e.at_ns) e.action)
    t.events

let crash_schedule t =
  List.map
    (fun e ->
      match e.action with
      | Crash n -> (e.at_ns, n)
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Scenario.crash_schedule %s: scenario contains non-crash \
                events"
               t.name))
    t.events

let openloop_phases t =
  List.map
    (fun p ->
      {
        Xenic_workload.Openloop.duration_ns = p.dur_ns;
        rate_tps = p.rate_tps;
        theta = p.theta;
        hot_frac = p.hot_frac;
      })
    t.phases

let scale_times t f =
  if (not (Float.is_finite f)) || Float.compare f 0.0 <= 0 then
    invalid_arg "Scenario.scale_times: factor must be > 0";
  {
    t with
    events =
      List.map
        (fun e ->
          let action =
            match e.action with
            | Degrade_cores d ->
                Degrade_cores { d with dur_ns = d.dur_ns *. f }
            | a -> a
          in
          { at_ns = e.at_ns *. f; action })
        t.events;
    phases = List.map (fun p -> { p with dur_ns = p.dur_ns *. f }) t.phases;
  }
