(** Declarative fault/load scenarios.

    A scenario is a named, timed schedule of injections — crashes and
    recoveries, link cuts and heals, gray failures (loss, extra
    latency, slow or degraded NIC core pools) — plus an optional
    open-loop arrival schedule (rate/skew/hot-fraction phases). It is
    constructible in OCaml or parsed from a compact s-expression text,
    validated against structural and protocol-safety bounds, and
    compiled onto a deterministic simulation: every injection executes
    as an ordinary engine event (scheduled on the affected node's
    partition), so golden digests, the serializability oracle, the
    strict-engine sanitizer and telemetry keep working unchanged.

    Text form (times in simulated nanoseconds; [*] = every node;
    [;] starts a comment):

    {v
    (scenario
      (name lossy-links)
      (nodes 4)
      (rto-ns 1000)
      (at 20000 (loss * * 0.05))      ; retransmit probability
      (at 50000 (delay 0 1 4))        ; wire-latency multiplier
      (at 60000 (cut (0 1) (2 3)))    ; one-way cut {0,1} -> {2,3}
      (at 90000 (heal))               ; clears every cut
      (at 30000 (slow-nic 1 4))       ; NIC service-time multiplier
      (at 40000 (degrade-cores 1 2 60000)) ; 2 cores out for 60us
      (at 100000 (crash 2))
      (at 130000 (recover 2))
      (phase 200000 400000 0.9 0))    ; dur rate_tps theta hot_frac
    v} *)

type action =
  | Crash of int
  | Recover of int
  | Cut of { froms : int list; tos : int list }
      (** One-way: frames from [froms] to [tos] stall until healed.
          Symmetric partitions use two [Cut] events. *)
  | Heal  (** Clear every cut. *)
  | Loss of { src : int; dst : int; p : float }
      (** Per-transmission retransmit probability on src->dst; [-1]
          means every node on that side. *)
  | Delay of { src : int; dst : int; factor : float }
      (** Wire-latency multiplier (>= 1) on src->dst; [-1] wildcard. *)
  | Slow_nic of { node : int; factor : float }
      (** NIC service-time multiplier (>= 1); [1.0] restores. *)
  | Degrade_cores of { node : int; n : int; dur_ns : float }
      (** Take [n] NIC cores out of service for [dur_ns]. *)

type event = { at_ns : float; action : action }

type phase = {
  dur_ns : float;
  rate_tps : float;
  theta : float;
  hot_frac : float;
}

type t = {
  name : string;
  nodes : int;
  rto_ns : float;  (** Retransmit timeout lossy links pay per retry. *)
  events : event list;  (** Sorted by time (stable). *)
  phases : phase list;  (** Open-loop arrival schedule; [[]] = closed loop. *)
}

(** [make ~name ~nodes ?rto_ns ?phases events] sorts the events by time
    (stable) and fills defaults ([rto_ns] = 1000). *)
val make :
  name:string ->
  nodes:int ->
  ?rto_ns:float ->
  ?phases:phase list ->
  event list ->
  t

(** {2 Shape predicates} *)

(** Scenario contains crash/recover events — the harness must arm
    request timeouts and attach a membership service. *)
val has_crashes : t -> bool

val has_recovers : t -> bool

(** Scenario touches link state (loss/delay/cut) — injection calls
    [net_enable_faults] before the run. *)
val has_link_faults : t -> bool

(** Open-loop scenario (nonempty phase list). *)
val has_phases : t -> bool

(** Largest number of simultaneously-crashed nodes over the schedule.
    The harness requires this < replication. *)
val max_concurrent_crashes : t -> int

(** {2 Validation}

    Structural bounds (node ranges, probability/factor/duration
    ranges, crash/recover consistency) plus protocol-safety rules:

    - open-loop scenarios ([phases <> []]) exclude crash/recover (the
      open-loop driver has no membership support);
    - crash scenarios run with request timeouts armed, where a firing
      timeout must imply a dead peer — so they exclude cuts, slow-NIC
      and core degradation, and bound loss retransmit cost
      ([Fabric.max_retransmits * rto_ns <= 5000]) and delay factors
      (<= 2) to keep worst-case gray delay under the timeout slack. *)
val validate : t -> (unit, string) result

(** [validate_exn t] raises [Invalid_argument] with the message. *)
val validate_exn : t -> unit

(** {2 Text form} *)

val to_string : t -> string

val of_string : string -> (t, string) result

val load_file : string -> (t, string) result

val save_file : string -> t -> unit

(** {2 Compilation onto a run} *)

(** [inject t sys ~seed] schedules every event of the scenario as an
    ordinary engine event, relative to the current simulated instant:
    link events run on the source node's partition, NIC events on
    their node's partition — legal under exact-order and windowed
    parallel engines alike. If the scenario touches link state, the
    fabric's fault lane is enabled first with [seed]/[rto_ns]. Call
    after building the system and before [Driver.run]/[Openloop.run].
    Raises [Invalid_argument] if the scenario fails {!validate} or its
    [nodes] differs from the system's. *)
val inject : t -> Xenic_proto.System.t -> seed:int64 -> unit

(** The crash events as a [Driver.run ~faults] schedule — the legacy
    injection path, kept bit-identical for existing callers. Raises
    [Invalid_argument] if the scenario contains anything but crashes. *)
val crash_schedule : t -> (float * int) list

(** Open-loop phases in [Openloop.run] form. *)
val openloop_phases : t -> Xenic_workload.Openloop.phase list

(** [scale_times t f] multiplies every event time, phase duration and
    degradation duration by [f] (> 0) — quick-mode scaling. *)
val scale_times : t -> float -> t
