open Xenic_sim

type bounds = {
  nodes : int;
  max_events : int;
  horizon_ns : float;
  allow_crash : bool;
  allow_cut : bool;
  allow_phases : bool;
}

let default_bounds =
  {
    nodes = 4;
    max_events = 6;
    horizon_ns = 150_000.0;
    allow_crash = true;
    allow_cut = true;
    allow_phases = true;
  }

(* All generated quantities are quantized so shrinking has a finite
   lattice to walk: times to 1000 ns, factors to 0.25, probabilities
   to 0.01. *)
let quantum_ns = 1_000.0

let q_time rng ~lo ~hi =
  let lo_k = int_of_float (lo /. quantum_ns) in
  let hi_k = max lo_k (int_of_float (hi /. quantum_ns)) in
  float_of_int (Rng.range rng lo_k hi_k) *. quantum_ns

let q_factor rng ~lo ~hi =
  let lo_k = int_of_float (lo *. 4.0) in
  let hi_k = max lo_k (int_of_float (hi *. 4.0)) in
  float_of_int (Rng.range rng lo_k hi_k) /. 4.0

let q_prob rng ~hi =
  float_of_int (Rng.range rng 1 (max 1 (int_of_float (hi *. 100.0)))) /. 100.0

let gen_armed rng b =
  (* Crash/recover pairs, non-overlapping in time so at most one node
     is ever down — safe at any replication >= 2. Optionally one
     bounded gray loss/delay backdrop (the validator's armed limits:
     rto 1000 keeps retransmit cost at 4000 <= 5000; delay <= 2). *)
  let events = ref [] in
  if Rng.bool rng then
    events :=
      {
        Scenario.at_ns = 0.0;
        action = Scenario.Loss { src = -1; dst = -1; p = q_prob rng ~hi:0.1 };
      }
      :: !events;
  if Rng.bool rng then
    events :=
      {
        Scenario.at_ns = 0.0;
        action =
          Scenario.Delay
            { src = -1; dst = -1; factor = q_factor rng ~lo:1.25 ~hi:2.0 };
      }
      :: !events;
  let cursor = ref (q_time rng ~lo:10_000.0 ~hi:30_000.0) in
  let pairs = Rng.range rng 1 2 in
  for _ = 1 to pairs do
    if Float.compare (!cursor +. 20_000.0) b.horizon_ns <= 0 then begin
      let node = Rng.int rng b.nodes in
      let down = q_time rng ~lo:10_000.0 ~hi:25_000.0 in
      events :=
        { Scenario.at_ns = !cursor; action = Scenario.Crash node }
        :: {
             Scenario.at_ns = !cursor +. down;
             action = Scenario.Recover node;
           }
        :: !events;
      cursor := !cursor +. down +. q_time rng ~lo:10_000.0 ~hi:25_000.0
    end
  done;
  !events

let gen_gray rng b ~allow_cut =
  let events = ref [] in
  let n_events = Rng.range rng 1 (max 1 b.max_events) in
  for _ = 1 to n_events do
    let at_ns = q_time rng ~lo:0.0 ~hi:(b.horizon_ns /. 2.0) in
    let action =
      match Rng.int rng 4 with
      | 0 ->
          Scenario.Loss
            {
              src = (if Rng.bool rng then -1 else Rng.int rng b.nodes);
              dst = -1;
              p = q_prob rng ~hi:0.2;
            }
      | 1 ->
          Scenario.Delay
            {
              src = (if Rng.bool rng then -1 else Rng.int rng b.nodes);
              dst = -1;
              factor = q_factor rng ~lo:1.25 ~hi:6.0;
            }
      | 2 ->
          Scenario.Slow_nic
            { node = Rng.int rng b.nodes; factor = q_factor rng ~lo:1.5 ~hi:6.0 }
      | _ ->
          Scenario.Degrade_cores
            {
              node = Rng.int rng b.nodes;
              n = 1 + Rng.int rng 2;
              dur_ns = q_time rng ~lo:10_000.0 ~hi:60_000.0;
            }
    in
    events := { Scenario.at_ns; action } :: !events
  done;
  if allow_cut && b.nodes >= 2 && Rng.bool rng then begin
    let a = Rng.int rng b.nodes in
    let c = (a + 1 + Rng.int rng (b.nodes - 1)) mod b.nodes in
    let t_cut = q_time rng ~lo:10_000.0 ~hi:(b.horizon_ns /. 2.0) in
    let t_heal =
      t_cut +. q_time rng ~lo:5_000.0 ~hi:20_000.0
    in
    events :=
      {
        Scenario.at_ns = t_cut;
        action = Scenario.Cut { froms = [ a ]; tos = [ c ] };
      }
      :: { Scenario.at_ns = t_heal; action = Scenario.Heal }
      :: !events
  end;
  !events

let gen_phases rng b =
  let n = Rng.range rng 1 3 in
  List.init n (fun _ ->
      {
        Scenario.dur_ns = q_time rng ~lo:40_000.0 ~hi:(b.horizon_ns /. 2.0);
        rate_tps = float_of_int (Rng.range rng 100 400) *. 1_000.0;
        theta = float_of_int (Rng.range rng 0 19) /. 20.0;
        hot_frac = float_of_int (Rng.range rng 0 6) /. 20.0;
      })

let generate ~seed b =
  let rng = Rng.create ~seed in
  let name = Printf.sprintf "fuzz-%Lx" seed in
  let open_loop = b.allow_phases && Rng.int rng 3 = 0 in
  let scn =
    if open_loop then
      (* Open loop excludes crash/recover; keep cuts out too so the
         arrival deadlines never race an unbounded stall. *)
      Scenario.make ~name ~nodes:b.nodes ~phases:(gen_phases rng b)
        (gen_gray rng b ~allow_cut:false)
    else if b.allow_crash && Rng.bool rng then
      Scenario.make ~name ~nodes:b.nodes (gen_armed rng b)
    else
      Scenario.make ~name ~nodes:b.nodes
        (gen_gray rng b ~allow_cut:b.allow_cut)
  in
  Scenario.validate_exn scn;
  scn

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* Lexicographic measure: event count first, then a quantized sum of
   times, probabilities, factor excess and phase count. Every accepted
   shrink step strictly decreases it, and each component lives on a
   finite quantized lattice, so minimize terminates. *)
let measure (t : Scenario.t) =
  let weight e =
    (e.Scenario.at_ns /. quantum_ns)
    +.
    match e.Scenario.action with
    | Scenario.Loss { p; _ } -> p *. 100.0
    | Scenario.Delay { factor; _ } -> (factor -. 1.0) *. 4.0
    | Scenario.Slow_nic { factor; _ } -> (factor -. 1.0) *. 4.0
    | Scenario.Degrade_cores { n; dur_ns; _ } ->
        float_of_int n +. (dur_ns /. quantum_ns)
    | _ -> 0.0
  in
  ( List.length t.Scenario.events,
    List.fold_left (fun acc e -> acc +. weight e) 0.0 t.Scenario.events
    +. (float_of_int (List.length t.Scenario.phases) *. 1000.0) )

let measure_lt (a1, a2) (b1, b2) =
  a1 < b1 || (a1 = b1 && Float.compare a2 b2 < 0)

let halve_time at_ns =
  float_of_int (int_of_float (at_ns /. quantum_ns) / 2) *. quantum_ns

let shrink_action = function
  | Scenario.Loss ({ p; _ } as l) when Float.compare p 0.02 > 0 ->
      Some (Scenario.Loss { l with p = float_of_int (int_of_float (p *. 100.0) / 2) /. 100.0 })
  | Scenario.Delay ({ factor; _ } as d) when Float.compare factor 1.25 > 0 ->
      Some
        (Scenario.Delay
           { d with factor = 1.0 +. (float_of_int (int_of_float ((factor -. 1.0) *. 4.0) / 2) /. 4.0) })
  | Scenario.Slow_nic ({ factor; _ } as s) when Float.compare factor 1.25 > 0
    ->
      Some
        (Scenario.Slow_nic
           { s with factor = 1.0 +. (float_of_int (int_of_float ((factor -. 1.0) *. 4.0) / 2) /. 4.0) })
  | Scenario.Degrade_cores ({ n; dur_ns; _ } as d) ->
      if n > 1 then Some (Scenario.Degrade_cores { d with n = n / 2 })
      else if Float.compare dur_ns (2.0 *. quantum_ns) > 0 then
        Some (Scenario.Degrade_cores { d with dur_ns = halve_time dur_ns })
      else None
  | _ -> None

let candidates (t : Scenario.t) =
  let evs = Array.of_list t.Scenario.events in
  let n = Array.length evs in
  let with_events events = { t with Scenario.events } in
  let drop i =
    with_events
      (Array.to_list evs |> List.filteri (fun j _ -> j <> i))
  in
  let replace i e =
    with_events (Array.to_list (Array.mapi (fun j x -> if j = i then e else x) evs))
  in
  let drops = List.init n drop in
  let time_halves =
    List.init n (fun i ->
        let e = evs.(i) in
        if Float.compare e.Scenario.at_ns quantum_ns >= 0 then
          Some (replace i { e with Scenario.at_ns = halve_time e.Scenario.at_ns })
        else None)
    |> List.filter_map Fun.id
  in
  let action_shrinks =
    List.init n (fun i ->
        let e = evs.(i) in
        Option.map
          (fun a -> replace i { e with Scenario.action = a })
          (shrink_action e.Scenario.action))
    |> List.filter_map Fun.id
  in
  let phase_drops =
    List.init
      (List.length t.Scenario.phases)
      (fun i ->
        {
          t with
          Scenario.phases =
            List.filteri (fun j _ -> j <> i) t.Scenario.phases;
        })
  in
  drops @ action_shrinks @ time_halves @ phase_drops

let minimize ~fails scn =
  if not (fails scn) then
    invalid_arg "Fuzz.minimize: the input scenario does not fail";
  let best = ref scn in
  let best_m = ref (measure scn) in
  let budget = ref 10_000 in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let cands = candidates !best in
    List.iter
      (fun c ->
        if (not !progress) && !budget > 0 then begin
          decr budget;
          let m = measure c in
          if
            measure_lt m !best_m
            && Result.is_ok (Scenario.validate c)
            && fails c
          then begin
            best := c;
            best_m := m;
            progress := true
          end
        end)
      cands
  done;
  !best

let write_reproducer ~dir scn =
  let path = Filename.concat dir (scn.Scenario.name ^ ".repro.scn") in
  Scenario.save_file path scn;
  path
