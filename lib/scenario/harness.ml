open Xenic_sim
open Xenic_cluster
open Xenic_proto
open Xenic_workload

type stack = Xenic | Drtmh | Drtmh_nc | Fasst | Drtmr | Farm

let all_stacks = [ Xenic; Drtmh; Drtmh_nc; Fasst; Drtmr; Farm ]

let stack_name = function
  | Xenic -> "xenic"
  | Drtmh -> "drtmh"
  | Drtmh_nc -> "drtmh-nc"
  | Fasst -> "fasst"
  | Drtmr -> "drtmr"
  | Farm -> "farm"

let stack_of_string s =
  List.find_opt (fun st -> String.equal (stack_name st) s) all_stacks

let flavor = function
  | Xenic -> invalid_arg "Harness.flavor: xenic is not an RDMA flavor"
  | Drtmh -> Rdma_system.Drtmh
  | Drtmh_nc -> Rdma_system.Drtmh_nc
  | Fasst -> Rdma_system.Fasst
  | Drtmr -> Rdma_system.Drtmr
  | Farm -> Rdma_system.Farm

type outcome = {
  committed : int;
  aborted : int;
  oracle_txns : int;
  digest : string;
  counters : (string * float) list;
}

let counter o name =
  match List.assoc_opt name o.counters with Some v -> v | None -> 0.0

let hw = Xenic_params.Hw.testbed

(* Same armed-timeout constants as the fault tests: 40us per request
   sits above the worst-case round trip even with the validator's
   bounded gray delay, and the lease is shorter so promotion lands
   while coordinators back off. *)
let req_timeout_ns = 40_000.0

let lease_ns = 25_000.0

let sb_params = { Smallbank.default_params with accounts_per_node = 500 }

let retwis_params = { Retwis.default_params with keys_per_node = 1_000 }

(* The injection seed is decorrelated from the driver seed: both roots
   are SplitMix64 streams, and seeding them identically would make the
   fabric's retransmit draws echo the driver's arrival draws. *)
let inject_seed seed = Int64.logxor seed 0x9e3779b97f4a7c15L

let sys_counters sys =
  Xenic_stats.Counter.to_list (Metrics.counters (sys.System.metrics ()))

let check_oracle ~what oracle =
  match Oracle.check oracle with
  | Oracle.Serializable -> ()
  | Oracle.Violation msg ->
      failwith (Printf.sprintf "%s: not serializable: %s" what msg)

let mk_closed stack ?domains ~nodes ~replication ~armed () =
  let engine = Engine.create ~strict:true ?domains () in
  let cfg = Config.make ~nodes ~replication in
  let req_timeout_ns = if armed then Some req_timeout_ns else None in
  match stack with
  | Xenic ->
      let segments, seg_size, d_max = Smallbank.store_cfg sb_params in
      let p =
        {
          Xenic_system.default_params with
          segments;
          seg_size;
          d_max;
          cache_capacity = 256;
          req_timeout_ns;
        }
      in
      let xs = Xenic_system.create engine hw cfg p in
      if armed then begin
        let m = Membership.create engine cfg ~lease_ns in
        Xenic_system.attach_membership xs m;
        Membership.start m
      end;
      System.of_xenic xs
  | _ ->
      let p =
        {
          Rdma_system.default_params with
          buckets = Smallbank.chained_buckets sb_params;
          req_timeout_ns;
        }
      in
      let rs = Rdma_system.create engine hw cfg (flavor stack) p in
      if armed then begin
        let m = Membership.create engine cfg ~lease_ns in
        Rdma_system.attach_membership rs m;
        Membership.start m
      end;
      System.of_rdma rs

let mk_open stack ?domains ~nodes ~replication () =
  let engine = Engine.create ~strict:true ?domains () in
  let cfg = Config.make ~nodes ~replication in
  match stack with
  | Xenic ->
      let segments, seg_size, d_max = Retwis.store_cfg retwis_params in
      let p =
        {
          Xenic_system.default_params with
          segments;
          seg_size;
          d_max;
          cache_capacity = 2 * retwis_params.Retwis.keys_per_node;
          partitions = 2;
        }
      in
      System.of_xenic (Xenic_system.create engine hw cfg p)
  | _ ->
      let p =
        {
          Rdma_system.default_params with
          buckets = Retwis.chained_buckets retwis_params;
          partitions = 2;
        }
      in
      System.of_rdma (Rdma_system.create engine hw cfg (flavor stack) p)

let closed_digest sys (result : Driver.result) oracle =
  let counters = sys_counters sys in
  String.concat "\n"
    (Printf.sprintf "committed=%d aborted=%d oracle_txns=%d"
       result.Driver.committed result.Driver.aborted (Oracle.txn_count oracle)
    :: Printf.sprintf "median=%h p99=%h abort_rate=%h duration=%h"
         result.Driver.median_latency_us result.Driver.p99_latency_us
         result.Driver.abort_rate result.Driver.duration_ns
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%h" k v) counters)

let open_digest sys (r : Openloop.result) oracle =
  let counters = sys_counters sys in
  String.concat "\n"
    (Printf.sprintf
       "offered=%d admitted=%d committed=%d aborted=%d retried=%d shed=%d \
        oracle_txns=%d"
       r.Openloop.offered r.Openloop.admitted r.Openloop.committed
       r.Openloop.aborted r.Openloop.retried r.Openloop.shed_total
       (Oracle.txn_count oracle)
    :: Printf.sprintf "now=%h goodput=%h median=%h p99=%h"
         (Engine.now sys.System.engine)
         r.Openloop.goodput_tps r.Openloop.median_latency_us
         r.Openloop.p99_latency_us
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%h" k v) counters)

let open_admission =
  { Admission.capacity = 64; backpressure = 8.0; deadline_ns = 500_000.0 }

let run ?domains ?(concurrency = 8) ?(target = 300) ~stack ~seed scn =
  Scenario.validate_exn scn;
  let nodes = scn.Scenario.nodes in
  let replication = min 3 nodes in
  if Scenario.max_concurrent_crashes scn >= replication then
    invalid_arg
      (Printf.sprintf
         "Harness.run %s: %d concurrent crashes >= replication %d"
         scn.Scenario.name
         (Scenario.max_concurrent_crashes scn)
         replication);
  let what = Printf.sprintf "%s/%s seed %Ld" scn.Scenario.name
      (stack_name stack) seed
  in
  if Scenario.has_phases scn then begin
    let sys = mk_open stack ?domains ~nodes ~replication () in
    let oracle = Oracle.create () in
    sys.System.set_oracle oracle;
    Retwis.load retwis_params sys;
    Scenario.inject scn sys ~seed:(inject_seed seed);
    let r =
      Openloop.run ~seed ~admission:open_admission ~service_slots:4
        ~users:10_000 sys
        (Retwis.openloop_spec retwis_params)
        ~phases:(Scenario.openloop_phases scn)
    in
    sys.System.sync ();
    check_oracle ~what oracle;
    {
      committed = r.Openloop.committed;
      aborted = r.Openloop.aborted;
      oracle_txns = Oracle.txn_count oracle;
      digest = open_digest sys r oracle;
      counters = sys_counters sys;
    }
  end
  else begin
    let armed = Scenario.has_crashes scn in
    let sys = mk_closed stack ?domains ~nodes ~replication ~armed () in
    let oracle = Oracle.create () in
    sys.System.set_oracle oracle;
    Smallbank.load sb_params sys;
    Scenario.inject scn sys ~seed:(inject_seed seed);
    let r =
      Driver.run sys (Smallbank.spec sb_params ~nodes) ~seed ~concurrency
        ~target
    in
    check_oracle ~what oracle;
    {
      committed = r.Driver.committed;
      aborted = r.Driver.aborted;
      oracle_txns = Oracle.txn_count oracle;
      digest = closed_digest sys r oracle;
      counters = sys_counters sys;
    }
  end
