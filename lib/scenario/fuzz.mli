(** Seed-driven scenario fuzzer: generate always-valid random
    scenarios within bounds, and shrink a failing scenario to a
    minimal reproducer.

    Generation is deterministic in the seed; the same
    (seed, bounds) pair always yields the same scenario, so a failure
    report of "seed N" is itself a reproducer even before shrinking. *)

type bounds = {
  nodes : int;  (** cluster size scenarios are generated for *)
  max_events : int;  (** upper bound on injected events *)
  horizon_ns : float;  (** events land in [0, horizon_ns] *)
  allow_crash : bool;
      (** permit crash/recover pairs (armed harness; excludes cuts,
          slow-NIC and core degradation per {!Scenario.validate}) *)
  allow_cut : bool;  (** permit cut/heal pairs (un-armed only) *)
  allow_phases : bool;  (** permit open-loop phase schedules *)
}

val default_bounds : bounds

(** [generate ~seed bounds] builds a random scenario that always
    passes {!Scenario.validate}: crashes come paired with recoveries
    (never sinking below quorum), cuts come with a trailing heal,
    factors and probabilities stay inside the validator's ranges, and
    event times are quantized to 1000 ns so shrunk schedules stay
    readable. *)
val generate : seed:int64 -> bounds -> Scenario.t

(** [minimize ~fails scn] greedily shrinks [scn] while [fails] keeps
    returning [true] on the candidate: it tries dropping each event,
    halving event times, and shrinking factors/probabilities toward
    their identity values, accepting any still-failing, still-valid
    candidate. Each accepted step strictly decreases a finite measure
    (event count, then summed times and factor excess), so shrinking
    terminates. Returns the smallest failing scenario found; [fails]
    must be deterministic. *)
val minimize : fails:(Scenario.t -> bool) -> Scenario.t -> Scenario.t

(** [write_reproducer ~dir scn] saves [scn] as
    [dir/<name>.repro.scn] and returns the path. *)
val write_reproducer : dir:string -> Scenario.t -> string
