(* Minimal JSON rendering for [--format json] output. Printing only —
   the lint passes never parse JSON, so no dependency is warranted. *)

type t =
  | S of string
  | I of int
  | B of bool
  | Null
  | L of t list
  | O of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | S s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | I i -> Buffer.add_string buf (string_of_int i)
  | B b -> Buffer.add_string buf (if b then "true" else "false")
  | Null -> Buffer.add_string buf "null"
  | L items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        items;
      Buffer.add_char buf ']'
  | O fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf
