(* Whole-codebase definition/call-graph extraction over the Parsetree.

   Nodes:
   - ["Module.fn"]      a toplevel (or one-level-nested-module) binding;
                        [Module] is the capitalized file basename, so
                        [lib/sim/process.ml] contributes [Process.*].
   - ["field:f"]        a synthetic node per record-field name [f].
                        Invoking a function stored in a record field
                        ([io.nic_mem ()]) edges to [field:nic_mem]; every
                        expression ever assigned to a field named [f]
                        (record literal or [<-]) edges out of it. This is
                        the closure channel that carries suspension
                        through [Nic_index.io]-style callback records.
   - ["extern:M.fn"]    a qualified reference that resolves to no file in
                        the analyzed set ([List.map], [Process.sleep]
                        when [lib/sim] is outside the roots). Kept so
                        effect seeds can match by name even on partial
                        file sets.

   Edges are reference edges, not proven calls: any identifier mentioned
   in a definition's body (including inside closures it builds) edges
   out of that definition. That is deliberately may-style — passing a
   suspending function around counts as potentially calling it.

   Resolution is scope-light by design: an unqualified identifier
   resolves within its own module only; a qualified path resolves
   through its last module component that names an analyzed file
   ([Xenic_store.Nic_index.try_lock] resolves via [Nic_index]). Local
   shadowing of toplevel names is ignored, which can only add edges —
   safe for a may-analysis. *)

module StrSet = Set.Make (String)

type def = {
  d_key : string;  (* "Module.fn" *)
  d_module : string;
  d_name : string;
  d_file : string;
  d_line : int;
}

type t = {
  defs : def list;  (* sorted by key, then file/line *)
  def_tbl : (string, def) Hashtbl.t;
  by_mod_fn : (string * string, string) Hashtbl.t;
  mutable edges : (string, StrSet.t) Hashtbl.t;
}

let field_key f = "field:" ^ f

let extern_key m fn = "extern:" ^ m ^ "." ^ fn

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let defs t = t.defs

let find_def t key = Hashtbl.find_opt t.def_tbl key

let callees t key =
  match Hashtbl.find_opt t.edges key with Some s -> s | None -> StrSet.empty

let nodes t =
  (* xenic-lint: allow HASHTBL-ORDER — folds into a set, order-canonical *)
  Hashtbl.fold (fun k _ acc -> StrSet.add k acc) t.edges
    (List.fold_left (fun acc d -> StrSet.add d.d_key acc) StrSet.empty t.defs)

open Parsetree

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let split_last path =
  match List.rev path with
  | fn :: rev_mods -> Some (List.rev rev_mods, fn)
  | [] -> None

(* All variables a binding pattern introduces. *)
let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ (txt, p.ppat_loc) ]
  | Ppat_alias (inner, { txt; _ }) -> (txt, p.ppat_loc) :: pat_vars inner
  | Ppat_constraint (inner, _) -> pat_vars inner
  | Ppat_tuple ps -> List.concat_map pat_vars ps
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Pass 1: definitions.                                                *)

let collect_defs acc ~file ast =
  let rec structure ~mpath items acc =
    List.fold_left
      (fun acc item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.fold_left
              (fun acc vb ->
                List.fold_left
                  (fun acc (name, loc) ->
                    {
                      (* Keyed by the innermost module component — the
                         same component qualified references resolve
                         through. *)
                      d_key = List.hd mpath ^ "." ^ name;
                      d_module = String.concat "." (List.rev mpath);
                      d_name = name;
                      d_file = file;
                      d_line = loc.Location.loc_start.Lexing.pos_lnum;
                    }
                    :: acc)
                  acc (pat_vars vb.pvb_pat))
              acc vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure items; _ };
              _;
            } ->
            structure ~mpath:(sub :: mpath) items acc
        | _ -> acc)
      acc items
  in
  structure ~mpath:[ module_of_file file ] ast acc

(* ------------------------------------------------------------------ *)
(* Resolution.                                                         *)

(* [scopes] is the module-name scope chain for unqualified identifiers,
   innermost first (e.g. ["Sub"; "Process"] inside [module Sub] of
   process.ml). *)
let resolve t ~scopes lid =
  match split_last (flatten_lid lid) with
  | None -> None
  | Some ([], fn) ->
      List.find_map
        (fun m -> Hashtbl.find_opt t.by_mod_fn (m, fn))
        scopes
  | Some (mods, fn) -> (
      let rec try_mods = function
        | [] -> None
        | m :: rest -> (
            match Hashtbl.find_opt t.by_mod_fn (m, fn) with
            | Some key -> Some key
            | None -> try_mods rest)
      in
      match try_mods (List.rev mods) with
      | Some key -> Some key
      | None -> (
          (* Unresolved but qualified: keep as an extern node under its
             innermost module component so seeds can match by name. *)
          match List.rev mods with
          | m :: _ -> Some (extern_key m fn)
          | [] -> None))

(* ------------------------------------------------------------------ *)
(* Pass 2: edges.                                                      *)

let add_edge t src dst =
  if src <> dst then
    Hashtbl.replace t.edges src (StrSet.add dst (callees t src))

(* Add [src -> target] for every identifier referenced inside [e],
   resolved in [scopes]; also record the field-channel edges found in
   [e] (record literals and [<-]), and field-invocation edges. *)
let walk_expr t ~scopes ~src e =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match resolve t ~scopes txt with
        | Some key -> add_edge t src key
        | None -> ())
    | Pexp_record (fields, _) ->
        List.iter
          (fun ({ Location.txt = flid; _ }, fexpr) ->
            match split_last (flatten_lid flid) with
            | Some (_, f) ->
                let fkey = field_key f in
                let sub it' e' =
                  (match e'.pexp_desc with
                  | Pexp_ident { txt; _ } -> (
                      match resolve t ~scopes txt with
                      | Some key -> add_edge t fkey key
                      | None -> ())
                  | _ -> ());
                  Ast_iterator.default_iterator.expr it' e'
                in
                let sub_it = { Ast_iterator.default_iterator with expr = sub } in
                sub_it.expr sub_it fexpr
            | None -> ())
          fields
    | Pexp_setfield (_, { txt = flid; _ }, v) -> (
        match split_last (flatten_lid flid) with
        | Some (_, f) -> (
            let fkey = field_key f in
            match v.pexp_desc with
            | Pexp_ident { txt; _ } -> (
                match resolve t ~scopes txt with
                | Some key -> add_edge t fkey key
                | None -> ())
            | _ -> ())
        | None -> ())
    | Pexp_apply ({ pexp_desc = Pexp_field (_, { txt = flid; _ }); _ }, _) -> (
        (* Invocation through a record field: [io.nic_mem ()]. *)
        match split_last (flatten_lid flid) with
        | Some (_, f) -> add_edge t src (field_key f)
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e

let collect_edges t ~file ast =
  let rec structure ~mpath items =
    let scopes = mpath in
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match pat_vars vb.pvb_pat with
                | (name, _) :: _ ->
                    let src = List.hd mpath ^ "." ^ name in
                    walk_expr t ~scopes ~src vb.pvb_expr
                | [] ->
                    (* [let () = ...] toplevel effects: attribute to a
                       per-module init node. *)
                    walk_expr t ~scopes ~src:(List.hd mpath ^ ".<init>")
                      vb.pvb_expr)
              vbs
        | Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Pmod_structure sub_items; _ };
              _;
            } ->
            structure ~mpath:(sub :: mpath) sub_items
        | _ -> ())
      items
  in
  structure ~mpath:[ module_of_file file ] ast

(* ------------------------------------------------------------------ *)

let build files =
  let defs = List.fold_left (fun acc (f, ast) -> collect_defs acc ~file:f ast) [] files in
  let defs =
    List.sort
      (fun a b -> compare (a.d_key, a.d_file, a.d_line) (b.d_key, b.d_file, b.d_line))
      defs
  in
  let t =
    {
      defs;
      def_tbl = Hashtbl.create 512;
      by_mod_fn = Hashtbl.create 512;
      edges = Hashtbl.create 512;
    }
  in
  List.iter
    (fun d ->
      if not (Hashtbl.mem t.def_tbl d.d_key) then Hashtbl.add t.def_tbl d.d_key d;
      (* Register under the innermost module component ("Nic_index",
         "Sub") so qualified paths resolve by their last component. *)
      let last_mod =
        match List.rev (String.split_on_char '.' d.d_module) with
        | m :: _ -> m
        | [] -> d.d_module
      in
      if not (Hashtbl.mem t.by_mod_fn (last_mod, d.d_name)) then
        Hashtbl.add t.by_mod_fn (last_mod, d.d_name) d.d_key)
    defs;
  List.iter (fun (f, ast) -> collect_edges t ~file:f ast) files;
  t

(* Resolve one identifier as a call-site target (for the atomicity
   pass): the scope chain is just the file's module. *)
let resolve_in_file t ~file lid = resolve t ~scopes:[ module_of_file file ] lid
