type rule =
  | Random_global
  | Wall_clock
  | Hashtbl_order
  | Float_compare
  | Obj_magic
  | Catch_all

let rule_id = function
  | Random_global -> "RANDOM"
  | Wall_clock -> "WALL-CLOCK"
  | Hashtbl_order -> "HASHTBL-ORDER"
  | Float_compare -> "FLOAT-CMP"
  | Obj_magic -> "OBJ-MAGIC"
  | Catch_all -> "CATCH-ALL"

let all_rules =
  [ Random_global; Wall_clock; Hashtbl_order; Float_compare; Obj_magic; Catch_all ]

let rule_of_id id = List.find_opt (fun r -> rule_id r = id) all_rules

type finding = { rule : rule; file : string; line : int; message : string }

let to_string f =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line (rule_id f.rule) f.message

(* ------------------------------------------------------------------ *)
(* Small string helpers (no external deps).                            *)

let find_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = find_substring s sub <> None

(* ------------------------------------------------------------------ *)
(* Allowlist comments.

   [(* xenic-lint: allow RULE-ID ... *)]      suppresses on this / next line
   [(* xenic-lint: allow-file RULE-ID ... *)] suppresses in the whole file

   WALL-CLOCK is deliberately harder to suppress than the other rules:
   an unannotated wall-clock read in simulation code silently breaks
   result determinism. It has no file-wide exemption, and a per-line
   [allow WALL-CLOCK] only counts when the directive also names the
   timer it feeds with a [timer:<tag>] token, e.g.

     [(* xenic-lint: allow WALL-CLOCK timer:bench-sim *)]

   so each read is individually identified (the `bench sim` events/sec
   timer), never waved through per file or with a bare [allow]. *)

let directive_key = "xenic-lint:"

let timer_tag_prefix = "timer:"

let has_timer_tag tokens =
  let n = String.length timer_tag_prefix in
  List.exists
    (fun tok -> String.length tok > n && String.sub tok 0 n = timer_tag_prefix)
    tokens

let split_tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '*')
  |> List.concat_map (String.split_on_char ')')
  |> List.filter (fun t -> t <> "")

type allowlist = {
  per_line : (int, rule list) Hashtbl.t;
  mutable file_wide : rule list;
  atomic_tags : (int, string) Hashtbl.t;
      (* [(* xenic-lint: atomic <tag> *)] — names one intentionally-held
         critical section for the ATOMICITY pass. Like [timer:<tag>] for
         WALL-CLOCK, a tag is mandatory: a bare [atomic] names nothing
         and suppresses nothing. *)
}

let allowlist_of_lines lines =
  let t =
    { per_line = Hashtbl.create 8; file_wide = []; atomic_tags = Hashtbl.create 8 }
  in
  List.iteri
    (fun i line ->
      match find_substring line directive_key with
      | None -> ()
      | Some idx ->
          let start = idx + String.length directive_key in
          let rest = String.sub line start (String.length line - start) in
          (match split_tokens rest with
          | "allow-file" :: ids ->
              t.file_wide <-
                List.filter
                  (fun r -> r <> Wall_clock)
                  (List.filter_map rule_of_id ids)
                @ t.file_wide
          | "allow" :: ids ->
              let rules = List.filter_map rule_of_id ids in
              let rules =
                if has_timer_tag ids then rules
                else List.filter (fun r -> r <> Wall_clock) rules
              in
              Hashtbl.replace t.per_line (i + 1) rules
          | "atomic" :: tag :: _ -> Hashtbl.replace t.atomic_tags (i + 1) tag
          | _ -> ()))
    lines;
  t

let suppressed allow rule line =
  let at l =
    match Hashtbl.find_opt allow.per_line l with
    | Some rs -> List.mem rule rs
    | None -> false
  in
  List.mem rule allow.file_wide || at line || at (line - 1)

(* The atomic tag covering [line]: on the line itself or the one above,
   exactly like per-line [allow] scoping. *)
let atomic_tag allow ~line =
  match Hashtbl.find_opt allow.atomic_tags line with
  | Some _ as t -> t
  | None -> Hashtbl.find_opt allow.atomic_tags (line - 1)

let allowlist_of_source src = allowlist_of_lines (String.split_on_char '\n' src)

(* ------------------------------------------------------------------ *)
(* AST-based rules.                                                    *)

open Parsetree

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let split_last path =
  match List.rev path with
  | fn :: rev_mods -> Some (List.rev rev_mods, fn)
  | [] -> None

let last_mod mods =
  match List.rev mods with m :: _ -> Some m | [] -> None

(* An expression that sorts: an identifier whose final component
   mentions "sort" ([List.sort], [sort_uniq], [fast_sort], a local
   [sorted_bindings]...), or a (partial) application of one. *)
let rec is_sort_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match split_last (flatten_lid txt) with
      | Some (_, fn) -> contains (String.lowercase_ascii fn) "sort"
      | None -> false)
  | Pexp_apply (f, _) -> is_sort_expr f
  | _ -> false

let float_ops = [ "+."; "-."; "*."; "/."; "**" ]

let float_idents =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

(* Syntactically-evidently-float operand: a float literal, a float
   sentinel, float arithmetic, or [float_of_int _]. A deliberately
   shallow heuristic — it never needs type information. *)
let is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match flatten_lid txt with
      | [ s ] -> List.mem s float_idents
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, _)
    when List.mem op float_ops ->
      true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
    when flatten_lid txt = [ "float_of_int" ] ->
      true
  | _ -> false

let poly_cmp_fns =
  [ "compare"; "min"; "max"; "="; "<>"; "<"; "<="; ">"; ">=" ]

let findings_of_ast ~filename ~rng_exempt ast =
  let findings = ref [] in
  let sorted_spans = ref [] in
  let add rule loc message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    findings := { rule; file = filename; line; message } :: !findings
  in
  let record_span loc =
    sorted_spans :=
      (loc.Location.loc_start.Lexing.pos_cnum, loc.Location.loc_end.Lexing.pos_cnum)
      :: !sorted_spans
  in
  let in_sorted_span loc =
    let c = loc.Location.loc_start.Lexing.pos_cnum in
    List.exists (fun (s, e) -> c >= s && c <= e) !sorted_spans
  in
  let check_ident loc lid =
    match split_last (flatten_lid lid) with
    | None | Some ([], _) -> ()
    | Some (mods, fn) ->
        if List.mem "Random" mods && not rng_exempt then
          add Random_global loc
            (Printf.sprintf
               "ambient Random.%s — draw from a seeded Rng.t stream instead" fn);
        (match last_mod mods with
        | Some "Unix" when fn = "gettimeofday" || fn = "time" ->
            add Wall_clock loc
              (Printf.sprintf
                 "wall-clock read Unix.%s — real time must not reach simulated \
                  results"
                 fn)
        | Some "Sys" when fn = "time" ->
            add Wall_clock loc
              "wall-clock read Sys.time — real time must not reach simulated \
               results"
        | Some "Hashtbl" when (fn = "fold" || fn = "iter") && not (in_sorted_span loc)
          ->
            add Hashtbl_order loc
              (Printf.sprintf
                 "Hashtbl.%s result not normalized through a sort — iteration \
                  order is nondeterministic"
                 fn)
        | Some "Obj" when fn = "magic" ->
            add Obj_magic loc "Obj.magic defeats the type system"
        | _ -> ())
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (op, args) -> (
        match (op.pexp_desc, args) with
        | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ _; (_, rhs) ]
          when is_sort_expr rhs ->
            record_span e.pexp_loc
        | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, lhs); _ ]
          when is_sort_expr lhs ->
            record_span e.pexp_loc
        | _ -> if is_sort_expr op then record_span e.pexp_loc)
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident fn; _ }; _ }, args)
      when List.mem fn poly_cmp_fns && List.exists (fun (_, a) -> is_floatish a) args
      ->
        add Float_compare e.pexp_loc
          (Printf.sprintf
             "polymorphic %s on float operands — NaN-unsound; use explicit \
              Float comparisons"
             fn)
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                add Catch_all c.pc_lhs.ppat_loc
                  "catch-all handler (with _ ->) swallows every exception, \
                   including invariant failures"
            | _ -> ())
          cases
    | Pexp_match (_, cases) ->
        (* [match e with exception _ -> ...] is the same trap spelled
           differently: a wildcard exception case swallows everything
           the scrutinee raises. *)
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_exception { ppat_desc = Ppat_any; _ }, None ->
                add Catch_all c.pc_lhs.ppat_loc
                  "catch-all handler (match ... with exception _ ->) swallows \
                   every exception, including invariant failures"
            | _ -> ())
          cases
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident e.pexp_loc txt
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator ast;
  !findings

(* ------------------------------------------------------------------ *)
(* Lexical fallback for files the parser rejects.                      *)

(* Does a [sort] on this line (or piped in on the next) apply to the
   Hashtbl traversal starting at [pos]? Merely containing the substring
   "sort" anywhere is not enough — [Hashtbl.iter (fun k _ -> k =
   "sort_key")] must still be flagged. The sort applies when it is
   downstream of the traversal through a pipe ([fold ... |> List.sort],
   possibly on the following line) or upstream wrapping it as an
   argument ([List.sort cmp (Hashtbl.fold ...)], [List.sort cmp @@
   Hashtbl.fold ...]). *)
let sort_applies_to_traversal ~line ~next pos =
  let occurs_from s sub i =
    match find_substring (String.sub s i (String.length s - i)) sub with
    | Some j -> Some (i + j)
    | None -> None
  in
  let rec any_sort_after i =
    match occurs_from line "sort" i with
    | None -> false
    | Some j ->
        (* Downstream sort: a pipe between the traversal and the sort. *)
        let between = String.sub line pos (j - pos) in
        if contains between "|>" || contains between "@@" then true
        else any_sort_after (j + 1)
  in
  let rec any_sort_before i =
    if i >= pos then false
    else
      match occurs_from line "sort" i with
      | Some j when j < pos ->
          (* Upstream sort applied to the traversal: the traversal sits
             inside the sort's argument list. *)
          let between = String.sub line j (pos - j) in
          contains between "(" || contains between "@@" || any_sort_before (j + 1)
      | _ -> false
  in
  let piped_next =
    (* Common formatting: the pipe into the sort starts the next line. *)
    match (find_substring next "|>", find_substring next "sort") with
    | Some p, Some s -> p < s
    | _ -> false
  in
  any_sort_after pos || any_sort_before 0 || piped_next

let lexical_scan ~filename ~rng_exempt lines =
  let arr = Array.of_list lines in
  List.concat
    (List.mapi
       (fun i line ->
         let ln = i + 1 in
         let has sub = contains line sub in
         let out = ref [] in
         let add rule message =
           out := { rule; file = filename; line = ln; message } :: !out
         in
         if (not rng_exempt) && has "Random." then
           add Random_global "ambient Random.* (lexical match)";
         if has "Unix.gettimeofday" || has "Unix.time" || has "Sys.time" then
           add Wall_clock "wall-clock read (lexical match)";
         if has "Obj.magic" then add Obj_magic "Obj.magic (lexical match)";
         (let traversal =
            match find_substring line "Hashtbl.fold" with
            | Some _ as p -> p
            | None -> find_substring line "Hashtbl.iter"
          in
          match traversal with
          | Some pos ->
              let next = if i + 1 < Array.length arr then arr.(i + 1) else "" in
              if not (sort_applies_to_traversal ~line ~next pos) then
                add Hashtbl_order "unsorted Hashtbl traversal (lexical match)"
          | None -> ());
         if has "with _ ->" then add Catch_all "catch-all handler (lexical match)";
         List.rev !out)
       lines)

(* ------------------------------------------------------------------ *)
(* Drivers.                                                            *)

let parse_impl ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  (* The parser can raise many exception types across compiler
     versions; any failure just downgrades to the lexical scan. *)
  (* xenic-lint: allow CATCH-ALL *)
  try Some (Parse.implementation lexbuf) with _ -> None

let lint_source ~filename src =
  let lines = String.split_on_char '\n' src in
  let allow = allowlist_of_lines lines in
  let rng_exempt = Filename.basename filename = "rng.ml" in
  let raw, status =
    match parse_impl ~filename src with
    | Some ast -> (findings_of_ast ~filename ~rng_exempt ast, `Parsed)
    | None -> (lexical_scan ~filename ~rng_exempt lines, `Lexical_fallback)
  in
  let kept = List.filter (fun f -> not (suppressed allow f.rule f.line)) raw in
  let kept =
    List.sort
      (fun a b -> compare (a.line, rule_id a.rule) (b.line, rule_id b.rule))
      kept
  in
  (kept, status)

let read_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  src

let lint_file path = lint_source ~filename:path (read_file path)

let lint_string ~filename src = fst (lint_source ~filename src)

let rec collect_ml acc path =
  if Sys.file_exists path && Sys.is_directory path then begin
    let base = Filename.basename path in
    if String.length base > 0 && (base.[0] = '.' || base.[0] = '_') then acc
    else
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left (fun acc name -> collect_ml acc (Filename.concat path name)) acc
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let collect_ml_files roots =
  List.fold_left collect_ml [] roots |> List.sort String.compare

let lint_roots roots =
  List.concat_map (fun f -> fst (lint_file f)) (collect_ml_files roots)
