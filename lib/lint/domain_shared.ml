(* DOMAIN-SHARED readiness report.

   Partitioning the event engine across OCaml 5 domains (ROADMAP Open
   item 2) is only safe once every piece of mutable state reachable
   from more than one partition's processes is either made
   per-partition or put behind synchronization. In today's single-heap
   simulator, *module-level* mutable bindings are exactly that set:
   per-node state lives inside the per-node records built by
   [create]/[spawn] and partitions with the node, while a toplevel
   [ref]/[Hashtbl]/array is one cell shared by every node's processes.

   The report enumerates each module-level mutable binding in the
   analyzed roots with the definitions that reference it and whether
   any referencing definition may suspend (a suspension point inside a
   reader/writer means cross-domain interleaving is observable, not
   just theoretical). Sorted, line-number-free, deterministic — it is
   checked in and byte-diffed like the golden traces. *)

type entry = {
  s_key : string;  (* Module.name *)
  s_file : string;
  s_line : int;
  s_kinds : string list;  (* sorted: "ref", "hashtbl", ... *)
  s_refs : string list;  (* defs referencing it, sorted *)
  s_suspending_refs : bool;
  s_tag : string option;  (* [(* xenic-lint: partitioned <tag> *)] *)
}

open Parsetree

let flatten_lid = Callgraph.flatten_lid

let split_last = Callgraph.split_last

let last_mod mods = match List.rev mods with m :: _ -> Some m | [] -> None

(* [(* xenic-lint: partitioned <tag> *)] on the binding's line or the
   line above declares module-level mutable state deliberately NOT
   per-partition — with the tag naming the synchronization or
   per-domain story that makes it safe. Like [atomic <tag>] and
   [timer:<tag>], the tag is mandatory: a bare [partitioned] names no
   justification and annotates nothing. Unannotated entries fail
   `xenic_lint report` — the ratchet that keeps new ambient globals
   out of the tree now that the engine runs partitions on domains. *)
let partitioned_key = "xenic-lint:"

let find_substring line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else go (i + 1)
  in
  go 0

let partitioned_tags src =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match find_substring line partitioned_key with
      | None -> ()
      | Some idx ->
          let start = idx + String.length partitioned_key in
          let rest = String.sub line start (String.length line - start) in
          (match Lint.split_tokens rest with
          | "partitioned" :: tag :: _ -> Hashtbl.replace tbl (i + 1) tag
          | _ -> ()))
    (String.split_on_char '\n' src);
  tbl

let tag_at tags ~line =
  match Hashtbl.find_opt tags line with
  | Some _ as t -> t
  | None -> Hashtbl.find_opt tags (line - 1)

(* Field names declared [mutable] anywhere in the analyzed files. *)
let mutable_fields files =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_file, _src, ast) ->
      let typ _it (td : type_declaration) =
        match td.ptype_kind with
        | Ptype_record labels ->
            List.iter
              (fun ld ->
                if ld.pld_mutable = Mutable then
                  Hashtbl.replace tbl ld.pld_name.txt ())
              labels
        | _ -> ()
      in
      let it =
        {
          Ast_iterator.default_iterator with
          type_declaration = (fun it td ->
            typ it td;
            Ast_iterator.default_iterator.type_declaration it td);
        }
      in
      it.structure it ast)
    files;
  tbl

(* Mutable-allocation kinds present in [e], not looking under closures:
   a [ref] built per call inside a function body is not module state. *)
let mutable_kinds ~mut_fields e =
  let kinds = ref [] in
  let add k = if not (List.mem k !kinds) then kinds := k :: !kinds in
  let expr it e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> ()  (* cut: per-call values *)
    | _ ->
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
            match flatten_lid txt with
            | [ "ref" ] -> add "ref"
            | l -> (
                match split_last l with
                | Some (mods, fn) -> (
                    match (last_mod mods, fn) with
                    | Some "Hashtbl", "create" -> add "hashtbl"
                    | Some "Queue", "create" -> add "queue"
                    | Some "Array", ("make" | "init" | "create_float") ->
                        add "array"
                    | Some "Bytes", ("create" | "make") -> add "bytes"
                    | Some "Buffer", "create" -> add "buffer"
                    | _ -> ())
                | None -> ()))
        | Pexp_array _ -> add "array"
        | Pexp_record (fields, _) ->
            if
              List.exists
                (fun ({ Location.txt = flid; _ }, _) ->
                  match split_last (flatten_lid flid) with
                  | Some (_, f) -> Hashtbl.mem mut_fields f
                  | None -> false)
                fields
            then add "mutable-record"
        | _ -> ());
        Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  List.sort String.compare !kinds

let scan ~graph ~susp files =
  let mut_fields = mutable_fields files in
  (* Reverse reference map over the graph. *)
  let callers = Hashtbl.create 256 in
  Callgraph.StrSet.iter
    (fun src ->
      Callgraph.StrSet.iter
        (fun dst ->
          Hashtbl.replace callers dst
            (src
            :: (match Hashtbl.find_opt callers dst with
               | Some l -> l
               | None -> [])))
        (Callgraph.callees graph src))
    (Callgraph.nodes graph);
  let entries =
    List.concat_map
      (fun (file, src, ast) ->
        let tags = partitioned_tags src in
        let rec structure ~mpath items =
          List.concat_map
            (fun item ->
              match item.pstr_desc with
              | Pstr_value (_, vbs) ->
                  List.filter_map
                    (fun vb ->
                      match Callgraph.pat_vars vb.pvb_pat with
                      | (name, loc) :: _ -> (
                          match mutable_kinds ~mut_fields vb.pvb_expr with
                          | [] -> None
                          | kinds ->
                              let key = List.hd mpath ^ "." ^ name in
                              let refs =
                                (match Hashtbl.find_opt callers key with
                                | Some l -> l
                                | None -> [])
                                |> List.filter (fun r -> r <> key)
                                |> List.sort_uniq String.compare
                              in
                              let line =
                                loc.Location.loc_start.Lexing.pos_lnum
                              in
                              Some
                                {
                                  s_key = key;
                                  s_file = file;
                                  s_line = line;
                                  s_kinds = kinds;
                                  s_refs = refs;
                                  s_suspending_refs =
                                    List.exists
                                      (fun r -> Suspend.may_suspend susp r)
                                      refs;
                                  s_tag = tag_at tags ~line;
                                })
                      | [] -> None)
                    vbs
              | Pstr_module
                  {
                    pmb_name = { txt = Some sub; _ };
                    pmb_expr = { pmod_desc = Pmod_structure sub_items; _ };
                    _;
                  } ->
                  structure ~mpath:(sub :: mpath) sub_items
              | _ -> [])
            items
        in
        structure ~mpath:[ Callgraph.module_of_file file ] ast)
      files
  in
  List.sort (fun a b -> compare (a.s_key, a.s_file) (b.s_key, b.s_file)) entries

let report_line e =
  Printf.sprintf "%s kinds=%s file=%s refs=%s suspending-refs=%s%s" e.s_key
    (String.concat "," e.s_kinds)
    e.s_file
    (match e.s_refs with [] -> "-" | refs -> String.concat "," refs)
    (if e.s_suspending_refs then "yes" else "no")
    (match e.s_tag with
    | Some tag -> " partitioned=" ^ tag
    | None -> "")

let unannotated entries = List.filter (fun e -> e.s_tag = None) entries

let to_string e =
  Printf.sprintf "%s:%d: DOMAIN-SHARED %s (%s) lacks a `partitioned <tag>' \
                  annotation — module-level mutable state is shared by every \
                  partition; make it engine-/partition-local or annotate the \
                  synchronization story"
    e.s_file e.s_line e.s_key
    (String.concat "," e.s_kinds)

let header =
  [
    "# DOMAIN-SHARED inventory: module-level mutable state, shared by every";
    "# node's processes in-process — since the engine runs partitions on";
    "# separate domains, every entry must carry a `partitioned <tag>'";
    "# annotation naming its synchronization story (unannotated = error).";
    "# Generated by `xenic_lint report lib`; update with `dune promote`.";
  ]

let report entries = header @ List.map report_line entries
