(* Zero-new-findings ratchet over checked-in inventories.

   An inventory is a sorted list of stable lines (no line numbers). The
   ratchet compares the freshly generated inventory against the
   checked-in baseline: *added* lines fail the build (a new suspension
   surface / atomicity finding must be annotated or the baseline
   consciously promoted); *removed* lines are reported so the baseline
   can be tightened, but do not fail. Comment lines ([#]) and blank
   lines in baselines are ignored. *)

type diff = { added : string list; removed : string list }

let strip lines =
  List.filter
    (fun l ->
      let l = String.trim l in
      l <> "" && not (String.length l > 0 && l.[0] = '#'))
    lines

let diff ~baseline ~current =
  let module S = Set.Make (String) in
  let b = S.of_list (strip baseline) in
  let c = S.of_list (strip current) in
  {
    added = S.elements (S.diff c b);
    removed = S.elements (S.diff b c);
  }

let load_baseline path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    String.split_on_char '\n' s
  end
  else []

(* Render a ratchet failure for [name]; returns [] when clean. *)
let check ~name ~baseline ~current =
  let d = diff ~baseline ~current in
  match d.added with
  | [] -> []
  | added ->
      Printf.sprintf
        "[RATCHET] %d new %s entr%s not in the checked-in baseline:"
        (List.length added) name
        (if List.length added = 1 then "y" else "ies")
      :: List.map (fun l -> "  + " ^ l) added
      @ [
          Printf.sprintf
            "  annotate the finding or promote the %s baseline deliberately."
            name;
        ]
