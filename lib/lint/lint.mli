(** Static determinism/correctness lint over the simulator's OCaml
    sources.

    The simulator's headline claim is bit-for-bit reproducibility from a
    scheduler seed, so the patterns that silently break it — ambient
    randomness, wall-clock reads, hash-table iteration order leaking into
    results — are banned mechanically rather than by code review.

    Each source file is parsed with [compiler-libs] and walked with
    {!Ast_iterator}; files that fail to parse fall back to a lexical
    line scan so the lint degrades rather than going blind.

    A finding on line [n] is suppressed by an allowlist comment
    [(* xenic-lint: allow RULE-ID *)] on line [n] or [n-1], or for the
    whole file by [(* xenic-lint: allow-file RULE-ID *)] anywhere. *)

type rule =
  | Random_global
      (** [RANDOM]: use of the ambient [Random.*] state outside
          [lib/sim/rng.ml]. All randomness must flow through seeded
          {!Rng.t} streams. *)
  | Wall_clock
      (** [WALL-CLOCK]: [Unix.gettimeofday], [Unix.time] or [Sys.time]
          — real time must never influence simulated results. Scoped
          more tightly than the other rules: [allow-file] never
          suppresses it, and a per-line [allow WALL-CLOCK] counts only
          when the directive also carries a [timer:<tag>] token naming
          the wall-clock timer it feeds (e.g. the `bench sim`
          events/sec measurement:
          [(* xenic-lint: allow WALL-CLOCK timer:bench-sim *)]). *)
  | Hashtbl_order
      (** [HASHTBL-ORDER]: [Hashtbl.fold]/[Hashtbl.iter] whose result is
          not passed through a sort — iteration order depends on
          insertion history and hashing, so it must be normalized before
          it can affect output. *)
  | Float_compare
      (** [FLOAT-CMP]: polymorphic [compare]/[min]/[max] on floats, or
          [=]/[<>] against float literals — NaN-unsound and a trap for
          future non-float instantiations. *)
  | Obj_magic  (** [OBJ-MAGIC]: any use of [Obj.magic]. *)
  | Catch_all
      (** [CATCH-ALL]: [try ... with _ ->] (or a lone wildcard handler)
          — swallows [Stack_overflow], [Assert_failure] and sanitizer
          exceptions alike. *)

val rule_id : rule -> string

val rule_of_id : string -> rule option

(* ---- Allowlist directives (shared with the analyzer passes) ------- *)

(** Tokenizer for [(* xenic-lint: ... *)] directive payloads: splits on
    spaces, tabs and the comment-closer characters ([*], [)]), dropping
    empty tokens — so ["allow RANDOM*)"] and ["allow\tRANDOM *)"] both
    yield [["allow"; "RANDOM"]]. Exposed for tests. *)
val split_tokens : string -> string list

(** Parsed allowlist of one source file: per-line and file-wide [allow]
    directives plus [atomic <tag>] critical-section names. *)
type allowlist

val allowlist_of_lines : string list -> allowlist

val allowlist_of_source : string -> allowlist

(** Is a finding of [rule] on [line] suppressed (per-line allow on the
    line or the one above, or a file-wide allow)? *)
val suppressed : allowlist -> rule -> int -> bool

(** The [atomic <tag>] critical-section name covering [line] (the line
    itself or the one above), if any. A bare [atomic] with no tag names
    nothing. Used by the ATOMICITY pass: an atomicity finding is only
    ever suppressed by a named tag, never by [allow]/[allow-file]. *)
val atomic_tag : allowlist -> line:int -> string option

type finding = {
  rule : rule;
  file : string;
  line : int;
  message : string;
}

(** [finding |> to_string] renders ["file:line: [RULE-ID] message"]. *)
val to_string : finding -> string

(** Lint one source file (path is read from disk). Findings are sorted
    by line. [`Lexical_fallback] signals the file failed to parse and
    only the line-based scan ran. *)
val lint_file : string -> finding list * [ `Parsed | `Lexical_fallback ]

(** Lint a source given inline (for tests). [filename] participates in
    path-based exemptions exactly as for {!lint_file}. *)
val lint_string : filename:string -> string -> finding list

(** Recursively collect [.ml] files under each root (sorted), lint each,
    and return all findings. Skips [_build] and dotted directories. *)
val lint_roots : string list -> finding list

(* ---- Source loading (shared with the analyzer passes) ------------- *)

(** Recursively collect [.ml] files under each root, sorted by path.
    Skips [_build] and dotted directories. *)
val collect_ml_files : string list -> string list

(** Parse one implementation with compiler-libs; [None] if the parser
    rejects it (the analyzer passes skip such files, the classic lint
    falls back to the lexical scan). *)
val parse_impl : filename:string -> string -> Parsetree.structure option

(** Read a file from disk. *)
val read_file : string -> string
