(* ATOMICITY: read-modify-write on shared mutable state across a
   suspension point.

   Within each toplevel definition, accesses to shared mutable lvalues
   (mutable record fields, [ref]s, [Hashtbl]/[Queue]/array contents)
   are linearized by source position. A finding is a write to lvalue
   [K] preceded by a read of [K] with a may-suspend call in between:
   whatever invariant the read established can be invalidated by
   another process scheduled during the suspension before the write
   lands — the exact shape of the PR 2 NIC-index double-grant (lock
   checked, [nic_mem]/DMA latency suspended, lock granted).

   The linearization is branch-insensitive on purpose: a read in one
   match arm pairing with a write in another usually marks a
   guard-recheck critical section, which is exactly what the
   annotation discipline is for — each intentionally-held section is
   named with [(* xenic-lint: atomic <tag> *)] on (or above) the write
   and audited in the checked-in inventory. [allow]/[allow-file] never
   suppress ATOMICITY; only a named tag does.

   Lvalues are keyed syntactically ([t.inflight_commits], [!r],
   [t.entries[]]) and filtered to shared state: accesses rooted in a
   local [let] bound to a fresh allocation (record literal, [ref _],
   [Hashtbl.create], ...) are dropped — state nobody else can see yet
   cannot race. Interprocedural effects come in through the
   may-suspend set; the read and write themselves must be in the same
   definition (helper-hidden RMWs are out of scope, documented in
   DESIGN.md §11). *)

type finding = {
  a_file : string;
  a_line : int;  (* the write *)
  a_def : string;  (* enclosing definition key *)
  a_lvalue : string;
  a_read_line : int;
  a_susp_line : int;
  a_callee : string;  (* display name of the suspending call *)
  a_tag : string option;  (* atomic <tag> covering the write, if any *)
}

let to_string f =
  Printf.sprintf
    "%s:%d: [ATOMICITY] read-modify-write on %s in %s spans a suspension \
     point: read at line %d, may-suspend call %s at line %d, write here%s"
    f.a_file f.a_line f.a_lvalue f.a_def f.a_read_line f.a_callee f.a_susp_line
    (match f.a_tag with
    | Some tag -> Printf.sprintf " (annotated: atomic %s)" tag
    | None ->
        " — name the critical section with (* xenic-lint: atomic <tag> *) \
         if the hold is intentional")

open Parsetree

let flatten_lid = Callgraph.flatten_lid

let split_last = Callgraph.split_last

let last_mod mods = match List.rev mods with m :: _ -> Some m | [] -> None

(* ------------------------------------------------------------------ *)
(* Lvalue rendering.                                                   *)

let is_array_get txt =
  match split_last (flatten_lid txt) with
  | Some (mods, ("get" | "unsafe_get")) -> last_mod mods = Some "Array"
  | _ -> false

let rec render e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten_lid txt with
      | [] -> None
      | l -> Some (String.concat "." l))
  | Pexp_field (b, { txt; _ }) -> (
      match (render b, split_last (flatten_lid txt)) with
      | Some p, Some (_, f) -> Some (p ^ "." ^ f)
      | _ -> None)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, a) :: _)
    when is_array_get txt -> (
      match render a with Some p -> Some (p ^ "[]") | None -> None)
  | Pexp_constraint (e, _) -> render e
  | _ -> None

let root_of key =
  let key =
    if String.length key > 0 && key.[0] = '!' then
      String.sub key 1 (String.length key - 1)
    else key
  in
  let cut =
    match (String.index_opt key '.', String.index_opt key '[') with
    | Some i, Some j -> Some (min i j)
    | Some i, None | None, Some i -> Some i
    | None, None -> None
  in
  match cut with Some i -> String.sub key 0 i | None -> key

(* ------------------------------------------------------------------ *)
(* Container operations on shared mutable structures.                  *)

type access = R | W | RW

let container_op mods fn =
  match (last_mod mods, fn) with
  | Some "Hashtbl", ("find" | "find_opt" | "find_all" | "mem") -> Some R
  | Some "Hashtbl", ("replace" | "add" | "remove" | "reset" | "clear") -> Some W
  | Some "Queue", ("peek" | "peek_opt" | "top" | "is_empty" | "length") -> Some R
  | Some "Queue", ("add" | "push" | "clear") -> Some W
  | Some "Queue", ("take" | "take_opt" | "pop") -> Some RW
  | Some "Array", ("get" | "unsafe_get") -> Some R
  | Some "Array", ("set" | "unsafe_set" | "fill") -> Some W
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Event collection.                                                   *)

type ev_kind = Read of string | Write of string | Susp of string

type event = { ev_cnum : int; ev_line : int; ev_kind : ev_kind }

let is_fresh_alloc e =
  let rec go e =
    match e.pexp_desc with
    | Pexp_record _ | Pexp_array _ -> true
    | Pexp_constraint (e, _) -> go e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match flatten_lid txt with
        | [ "ref" ] -> true
        | l -> (
            match split_last l with
            | Some (mods, ("create" | "make" | "init" | "copy" | "of_list"))
              -> (
                match last_mod mods with
                | Some ("Hashtbl" | "Queue" | "Array" | "Bytes" | "Buffer") ->
                    true
                | _ -> false)
            | _ -> false))
    | _ -> false
  in
  go e

(* Collect the set of local names bound to fresh allocations anywhere in
   [body] (scope-insensitive within the definition). *)
let fresh_locals body =
  let fresh = Hashtbl.create 8 in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, is_fresh_alloc vb.pvb_expr) with
            | Ppat_var { txt; _ }, true -> Hashtbl.replace fresh txt ()
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  fresh

let collect_events ~graph ~susp ~file body =
  let events = ref [] in
  let add loc kind =
    events :=
      {
        ev_cnum = loc.Location.loc_start.Lexing.pos_cnum;
        ev_line = loc.Location.loc_start.Lexing.pos_lnum;
        ev_kind = kind;
      }
      :: !events
  in
  let add_access loc acc key =
    match acc with
    | R -> add loc (Read key)
    | W -> add loc (Write key)
    | RW ->
        add loc (Read key);
        add loc (Write key)
  in
  let suspends key = Suspend.may_suspend susp key || Suspend.is_seed_key key in
  let expr it e =
    (match e.pexp_desc with
    (* Reads: field projection, ref deref, container lookups. *)
    | Pexp_field (_, _) -> (
        match render e with Some key -> add e.pexp_loc (Read key) | None -> ())
    | Pexp_setfield (b, { txt; _ }, _) -> (
        match (render b, split_last (flatten_lid txt)) with
        | Some p, Some (_, f) -> add e.pexp_loc (Write (p ^ "." ^ f))
        | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let path = flatten_lid txt in
        (match (path, args) with
        | [ "!" ], [ (_, r) ] -> (
            match render r with
            | Some p -> add e.pexp_loc (Read ("!" ^ p))
            | None -> ())
        | [ ":=" ], (_, r) :: _ -> (
            match render r with
            | Some p -> add e.pexp_loc (Write ("!" ^ p))
            | None -> ())
        | [ ("incr" | "decr") ], [ (_, r) ] -> (
            match render r with
            | Some p -> add_access e.pexp_loc RW ("!" ^ p)
            | None -> ())
        | _ -> (
            match split_last path with
            | Some (mods, fn) -> (
                match (container_op mods fn, args) with
                | Some acc, (_, tbl) :: _ -> (
                    match render tbl with
                    | Some p -> add_access e.pexp_loc acc (p ^ "[]")
                    | None -> ())
                | _ -> ())
            | None -> ()));
        (* The same application may also be a suspension point. *)
        match Callgraph.resolve_in_file graph ~file txt with
        | Some key when suspends key ->
            add e.pexp_loc (Susp (String.concat "." path))
        | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_field (_, { txt; _ }); _ }, _) -> (
        (* Closure-channel call: [io.nic_mem ()]. *)
        match split_last (flatten_lid txt) with
        | Some (_, f) when suspends (Callgraph.field_key f) ->
            add e.pexp_loc (Susp ("<field " ^ f ^ ">"))
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  List.rev !events

(* ------------------------------------------------------------------ *)
(* Per-definition analysis.                                            *)

let analyze_def ~graph ~susp ~allow ~file ~def_key body =
  let fresh = fresh_locals body in
  let shared key = not (Hashtbl.mem fresh (root_of key)) in
  let events =
    collect_events ~graph ~susp ~file body
    |> List.filter (fun ev ->
           match ev.ev_kind with
           | Read k | Write k -> shared k
           | Susp _ -> true)
    |> List.sort (fun a b -> compare a.ev_cnum b.ev_cnum)
  in
  (* First offending write per lvalue: a read of the same lvalue
     earlier in the definition with a suspension in between. *)
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun w ->
      match w.ev_kind with
      | Write key when not (Hashtbl.mem seen key) -> (
          let reads =
            List.filter
              (fun e ->
                e.ev_cnum < w.ev_cnum
                && match e.ev_kind with Read k -> k = key | _ -> false)
              events
          in
          let pick =
            (* Latest read that still has a suspension between it and
               the write, and the first suspension after that read. *)
            List.fold_left
              (fun best r ->
                let s =
                  List.find_opt
                    (fun e ->
                      e.ev_cnum > r.ev_cnum
                      && e.ev_cnum < w.ev_cnum
                      && match e.ev_kind with Susp _ -> true | _ -> false)
                    events
                in
                match (s, best) with
                | Some s, None -> Some (r, s)
                | Some s, Some (r', _) when r.ev_cnum > r'.ev_cnum ->
                    Some (r, s)
                | _ -> best)
              None reads
          in
          match pick with
          | None -> None
          | Some (r, s) ->
              Hashtbl.replace seen key ();
              let callee =
                match s.ev_kind with Susp c -> c | _ -> assert false
              in
              Some
                {
                  a_file = file;
                  a_line = w.ev_line;
                  a_def = def_key;
                  a_lvalue = key;
                  a_read_line = r.ev_line;
                  a_susp_line = s.ev_line;
                  a_callee = callee;
                  a_tag = Lint.atomic_tag allow ~line:w.ev_line;
                })
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)

(* [files]: (filename, source, ast). [graph]/[susp] should be built
   over (at least) the same files. *)
let analyze ~graph ~susp files =
  List.concat_map
    (fun (file, source, ast) ->
      let allow = Lint.allowlist_of_source source in
      let rec structure ~mpath items =
        List.concat_map
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.concat_map
                  (fun vb ->
                    let def_key =
                      match Callgraph.pat_vars vb.pvb_pat with
                      | (name, _) :: _ -> List.hd mpath ^ "." ^ name
                      | [] -> List.hd mpath ^ ".<init>"
                    in
                    analyze_def ~graph ~susp ~allow ~file ~def_key vb.pvb_expr)
                  vbs
            | Pstr_module
                {
                  pmb_name = { txt = Some sub; _ };
                  pmb_expr = { pmod_desc = Pmod_structure sub_items; _ };
                  _;
                } ->
                structure ~mpath:(sub :: mpath) sub_items
            | _ -> [])
          items
      in
      structure ~mpath:[ Callgraph.module_of_file file ] ast)
    files
  |> List.sort (fun a b ->
         compare (a.a_file, a.a_line, a.a_lvalue) (b.a_file, b.a_line, b.a_lvalue))

let annotated fs = List.filter (fun f -> f.a_tag <> None) fs

let unannotated fs = List.filter (fun f -> f.a_tag = None) fs

(* Inventory line for an annotated finding: file, tag, lvalue — no line
   numbers, so the checked-in audit list is stable under line churn. *)
let inventory_line f =
  Printf.sprintf "%s %s %s"
    f.a_file
    (match f.a_tag with Some t -> t | None -> "-")
    f.a_lvalue

let inventory fs =
  annotated fs |> List.map inventory_line |> List.sort_uniq String.compare
