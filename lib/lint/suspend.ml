(* May-suspend effect inference.

   Seeded by the simulator's primitive suspension points — the
   operations that park the calling process on the engine and resume it
   at a later simulated instant — and propagated backwards through the
   call graph to a fixpoint: a definition may suspend iff it references
   (so may call) anything that may suspend, including through the
   record-field closure channel ([field:*] nodes) and through qualified
   externs, so the inference still works on partial file sets (unit
   tests, per-directory runs).

   Deliberately NOT seeds:
   - [Engine.after]/[Engine.at]: they schedule a callback and return —
     the caller keeps running atomically.
   - [Process.spawn]: the child runs inline until its first suspension,
     but the spawning process itself never suspends.
   - [Ivar.fill], [Mailbox.send], [Resource.release]: wake others,
     never park the caller. *)

module StrSet = Callgraph.StrSet

let seeds =
  [
    ("Process", "suspend");
    ("Process", "sleep");
    ("Process", "yield");
    ("Process", "with_timeout");
    ("Process", "parallel");
    ("Ivar", "read");
    ("Ivar", "read_timeout");
    ("Mailbox", "recv");
    ("Mailbox", "recv_timeout");
    ("Resource", "acquire");
    ("Resource", "use");
  ]

let seed_keys =
  List.concat_map
    (fun (m, fn) -> [ m ^ "." ^ fn; Callgraph.extern_key m fn ])
    seeds

let is_seed_key k = List.mem k seed_keys

(* Fixpoint: start from every node matching a seed, walk reference
   edges backwards until nothing new is marked. *)
let infer g =
  let nodes = Callgraph.nodes g in
  (* Reverse edges. *)
  let callers = Hashtbl.create 512 in
  Callgraph.StrSet.iter
    (fun src ->
      Callgraph.StrSet.iter
        (fun dst ->
          let cur =
            match Hashtbl.find_opt callers dst with
            | Some s -> s
            | None -> StrSet.empty
          in
          Hashtbl.replace callers dst (StrSet.add src cur))
        (Callgraph.callees g src))
    nodes;
  let marked = ref StrSet.empty in
  let work = Queue.create () in
  let mark k =
    if not (StrSet.mem k !marked) then begin
      marked := StrSet.add k !marked;
      Queue.add k work
    end
  in
  Callgraph.StrSet.iter (fun k -> if is_seed_key k then mark k) nodes;
  List.iter (fun k -> if Callgraph.find_def g k <> None then mark k) seed_keys;
  (* Extern seeds referenced by edges may not appear in [nodes] as
     sources; still mark them if anything points at them. *)
  (* Marking into a set: the fixpoint result is worklist-order-free. *)
  (* xenic-lint: allow HASHTBL-ORDER *)
  Hashtbl.iter (fun dst _ -> if is_seed_key dst then mark dst) callers;
  while not (Queue.is_empty work) do
    let k = Queue.pop work in
    match Hashtbl.find_opt callers k with
    | None -> ()
    | Some cs -> StrSet.iter mark cs
  done;
  !marked

(* The checked-in inventory: every analyzed definition inferred
   may-suspend, one [Module.fn] per line, sorted; the closure-channel
   field names that carry suspension follow under a [field:] prefix.
   Names only — no file/line — so the ratchet is stable under
   unrelated line churn and only moves when the suspension surface
   itself moves. *)
let inventory g =
  let s = infer g in
  let defs =
    Callgraph.defs g
    |> List.filter (fun d -> StrSet.mem d.Callgraph.d_key s)
    |> List.map (fun d -> d.Callgraph.d_key)
    |> List.sort_uniq String.compare
  in
  let fields =
    StrSet.elements s
    |> List.filter (fun k ->
           String.length k > 6 && String.sub k 0 6 = "field:")
    |> List.sort String.compare
  in
  defs @ fields

let may_suspend s key = StrSet.mem key s
