(** Per-node replica storage: for every shard a node holds (its own
    primary shard plus the shards it backs up), a host-memory Robinhood
    hash table for distributed objects and a B+ tree for ordered local
    tables. *)

type shard_store = {
  hash : bytes Xenic_store.Robinhood.t;
  ordered : bytes Xenic_store.Btree.t;
}

type t

(** [create cfg ~node ~segments ~seg_size ~d_max] allocates stores for
    every shard [node] replicates. *)
val create :
  Config.t -> node:int -> segments:int -> seg_size:int -> d_max:int option -> t

val node : t -> int

(** Store of [shard]; raises if this node does not replicate it. *)
val shard_store : t -> shard:int -> shard_store

val holds : t -> shard:int -> bool

(** Read an object from this node's copy of its shard. Returns value
    and version (ordered-table objects report version 0). *)
val read : t -> Keyspace.t -> (bytes * int) option

(** [apply t op ~seq] applies a committed write to this node's copy.
    Used by the host Robinhood workers when draining the log. *)
val apply : t -> Op.t -> seq:int -> unit

(** [loader t] applies initial data during workload loading (sets
    version 1, bypassing the log). *)
val load : t -> Keyspace.t -> bytes -> unit

(** Iterate every (key, value, seq) of one shard's hash store. *)
val iter_hash : t -> shard:int -> (Keyspace.t -> bytes -> int -> unit) -> unit

(** [sync_shard ~from t ~shard] makes [t]'s copy of [shard] mirror
    [from]'s — values, versions, deletions and ordered-table apply
    stamps. State transfer for a rejoining node; the source must be
    quiescent (run it under the recovery commit fence, after the
    source's logs have drained). Deterministic: entries are applied in
    sorted key order. Both nodes must hold [shard]. *)
val sync_shard : from:t -> t -> shard:int -> unit

(** Ordered-table range reads over this node's replicas (used by local
    transactions whose scans are serialized by companion hash locks). *)
val ordered_min :
  t -> lo:Keyspace.t -> hi:Keyspace.t -> (Keyspace.t * bytes) option

val ordered_max :
  t -> lo:Keyspace.t -> hi:Keyspace.t -> (Keyspace.t * bytes) option

val ordered_range :
  t -> lo:Keyspace.t -> hi:Keyspace.t -> (Keyspace.t * bytes) list
