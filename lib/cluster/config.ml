type t = { nodes : int; replication : int }

let make ~nodes ~replication =
  if nodes <= 0 then invalid_arg "Config.make: nodes";
  (* One shard per node, and the key layout packs the shard into 8
     bits (Keyspace.max_shard): more nodes than shard ids would wrap
     silently in every key. *)
  if nodes > Keyspace.max_shard + 1 then
    invalid_arg
      (Printf.sprintf "Config.make: nodes must be <= %d (8-bit shard field)"
         (Keyspace.max_shard + 1));
  if replication <= 0 || replication > nodes then
    invalid_arg "Config.make: replication must be in [1, nodes]";
  { nodes; replication }

let primary t ~shard =
  if shard < 0 || shard >= t.nodes then invalid_arg "Config.primary";
  shard

let backups t ~shard =
  List.init (t.replication - 1) (fun i -> (shard + i + 1) mod t.nodes)

let replicas t ~shard = primary t ~shard :: backups t ~shard

let holds t ~shard ~node = List.mem node (replicas t ~shard)

let backup_shards t ~node =
  List.filter
    (fun shard -> List.mem node (backups t ~shard))
    (List.init t.nodes (fun s -> s))
