type t = { nodes : int; replication : int }

let make ~nodes ~replication =
  if nodes <= 0 then invalid_arg "Config.make: nodes";
  (* One shard per node, and the key layout packs the shard into 8
     bits (Keyspace.max_shard): more nodes than shard ids would wrap
     silently in every key. *)
  if nodes > Keyspace.max_shard + 1 then
    invalid_arg
      (Printf.sprintf "Config.make: nodes must be <= %d (8-bit shard field)"
         (Keyspace.max_shard + 1));
  if replication <= 0 || replication > nodes then
    invalid_arg "Config.make: replication must be in [1, nodes]";
  { nodes; replication }

let primary t ~shard =
  if shard < 0 || shard >= t.nodes then invalid_arg "Config.primary";
  shard

let backups t ~shard =
  List.init (t.replication - 1) (fun i -> (shard + i + 1) mod t.nodes)

let replicas t ~shard = primary t ~shard :: backups t ~shard

let holds t ~shard ~node = List.mem node (replicas t ~shard)

(* Contiguous blocks: nodes [0, n/p) on partition 0, and so on, with
   the first (n mod p) partitions one node larger. Contiguity keeps a
   node's primary shard and the shards it backs up (ring successors)
   mostly co-partitioned, which minimizes cross-partition replication
   traffic under the parallel engine. *)
let partition_of_node t ~partitions ~node =
  if partitions <= 0 then
    invalid_arg "Config.partition_of_node: partitions must be positive";
  if node < 0 || node >= t.nodes then
    invalid_arg
      (Printf.sprintf "Config.partition_of_node: node %d outside [0, %d)" node
         t.nodes);
  if partitions >= t.nodes then node
  else begin
    let base = t.nodes / partitions and extra = t.nodes mod partitions in
    (* The first [extra] partitions hold [base + 1] nodes each. *)
    let boundary = extra * (base + 1) in
    if node < boundary then node / (base + 1)
    else extra + ((node - boundary) / base)
  end

let backup_shards t ~node =
  List.filter
    (fun shard -> List.mem node (backups t ~shard))
    (List.init t.nodes (fun s -> s))
