open Xenic_store

type shard_store = { hash : bytes Robinhood.t; ordered : bytes Btree.t }

type t = {
  node : int;
  stores : shard_store option array;
  (* Last-applied stamp per ordered key: ordered tables carry no
     per-object version, so concurrent log-apply workers order their
     writes by the log-append stamp instead. *)
  ordered_stamps : (Keyspace.t, int) Hashtbl.t;
}

let create cfg ~node ~segments ~seg_size ~d_max =
  let stores =
    Array.init cfg.Config.nodes (fun shard ->
        if Config.holds cfg ~shard ~node then
          Some
            {
              hash =
                Robinhood.create ~segments ~seg_size ~d_max ~vsize:Bytes.length;
              ordered = Btree.create ();
            }
        else None)
  in
  { node; stores; ordered_stamps = Hashtbl.create 1024 }

let node t = t.node

let shard_store t ~shard =
  match t.stores.(shard) with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Storage.shard_store: node %d does not hold shard %d"
           t.node shard)

let holds t ~shard = t.stores.(shard) <> None

let read t k =
  let s = shard_store t ~shard:(Keyspace.shard k) in
  if Keyspace.ordered k then
    match Btree.find s.ordered k with Some v -> Some (v, 0) | None -> None
  else Robinhood.find s.hash k

let apply t op ~seq =
  let k = Op.key op in
  let s = shard_store t ~shard:(Keyspace.shard k) in
  if Keyspace.ordered k then begin
    (* [seq] is the log-append stamp: apply only in stamp order so
       concurrent workers cannot regress a newer write. *)
    let last = Option.value ~default:(-1) (Hashtbl.find_opt t.ordered_stamps k) in
    if seq > last then begin
      Hashtbl.replace t.ordered_stamps k seq;
      match op with
      | Op.Put (_, v) -> Btree.insert s.ordered k v
      | Op.Delete _ -> ignore (Btree.delete s.ordered k)
    end
  end
  else
    (* [seq] is the object version: never regress. *)
    let current = match Robinhood.find s.hash k with
      | Some (_, s') -> s'
      | None -> -1
    in
    if seq > current then
      match op with
      | Op.Put (_, v) ->
          if not (Robinhood.update s.hash k v ~seq) then begin
            ignore (Robinhood.insert s.hash k v);
            ignore (Robinhood.update s.hash k v ~seq)
          end
      | Op.Delete _ -> ignore (Robinhood.delete s.hash k)

let load t k v =
  let s = shard_store t ~shard:(Keyspace.shard k) in
  if Keyspace.ordered k then Btree.insert s.ordered k v
  else ignore (Robinhood.insert s.hash k v)

(* State transfer for node rejoin: make [t]'s copy of [shard] mirror
   [from]'s. The source must be quiescent (callers run this under the
   recovery commit fence, after the source's logs have drained), so the
   copy is a consistent snapshot. Versions are carried over, which
   keeps the destination's version-guarded [apply] idempotent against
   any stale records its own workers drain afterwards. *)
let sync_shard ~from t ~shard =
  let s = shard_store from ~shard in
  let d = shard_store t ~shard in
  (* Hash table: mirror the source entry set. Entries are applied in
     sorted key order so the destination's table layout is a function
     of the source's contents, not of either table's probe history. *)
  let src_entries = ref [] in
  Robinhood.iter s.hash (fun k v seq -> src_entries := (k, v, seq) :: !src_entries);
  let src_entries =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) !src_entries
  in
  let src_keys = Hashtbl.create (List.length src_entries) in
  List.iter (fun (k, _, _) -> Hashtbl.replace src_keys k ()) src_entries;
  let stale = ref [] in
  Robinhood.iter d.hash (fun k _ _ ->
      if not (Hashtbl.mem src_keys k) then stale := k :: !stale);
  List.iter
    (fun k -> ignore (Robinhood.delete d.hash k))
    (List.sort compare !stale);
  List.iter
    (fun (k, v, seq) ->
      if not (Robinhood.update d.hash k v ~seq) then begin
        ignore (Robinhood.insert d.hash k v);
        ignore (Robinhood.update d.hash k v ~seq)
      end)
    src_entries;
  (* Ordered table: mirror the shard's key range, dropping destination
     keys the source deleted, and carry the apply stamps over so
     stamp-ordered log replay cannot regress a copied write. Range
     iteration is in ascending key order — deterministic, and no
     Hashtbl iteration is involved. *)
  let lo = Keyspace.make ~shard ~table:0 ~ordered:true ~id:0 in
  let hi =
    Keyspace.make ~shard ~table:Keyspace.max_table ~ordered:true
      ~id:Keyspace.max_id
  in
  let stale_ordered =
    Btree.fold_range d.ordered ~lo ~hi ~init:[] (fun acc k _ ->
        if Btree.mem s.ordered k then acc else k :: acc)
  in
  List.iter (fun k -> ignore (Btree.delete d.ordered k)) (List.rev stale_ordered);
  Btree.iter_range s.ordered ~lo ~hi (fun k v ->
      Btree.insert d.ordered k v;
      match Hashtbl.find_opt from.ordered_stamps k with
      | Some stamp -> Hashtbl.replace t.ordered_stamps k stamp
      | None -> ())

let iter_hash t ~shard f =
  let s = shard_store t ~shard in
  Robinhood.iter s.hash f

let ordered_min t ~lo ~hi =
  let s = shard_store t ~shard:(Keyspace.shard lo) in
  Btree.min_in_range s.ordered ~lo ~hi

let ordered_max t ~lo ~hi =
  let s = shard_store t ~shard:(Keyspace.shard lo) in
  Btree.max_in_range s.ordered ~lo ~hi

let ordered_range t ~lo ~hi =
  let s = shard_store t ~shard:(Keyspace.shard lo) in
  List.rev (Btree.fold_range s.ordered ~lo ~hi ~init:[] (fun acc k v -> (k, v) :: acc))
