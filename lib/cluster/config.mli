(** Cluster topology: each node is the transaction coordinator for its
    clients, the primary replica of one database shard, and a backup
    replica for [replication - 1] other shards (§4). *)

type t = {
  nodes : int;  (** Servers in the cluster. *)
  replication : int;  (** Copies of each shard: 1 primary + (r-1) backups. *)
}

(** Raises [Invalid_argument] unless [1 <= replication <= nodes] and
    [nodes <= Keyspace.max_shard + 1] (the key layout's 8-bit shard
    field bounds the cluster size). *)
val make : nodes:int -> replication:int -> t

(** Shard [s]'s primary is node [s]. *)
val primary : t -> shard:int -> int

(** Backups of shard [s]: the [replication - 1] nodes after the
    primary, in ring order. *)
val backups : t -> shard:int -> int list

(** All nodes replicating shard [s] (primary first). *)
val replicas : t -> shard:int -> int list

(** Does [node] hold a copy of [shard]? *)
val holds : t -> shard:int -> node:int -> bool

(** Shards for which [node] is a backup. *)
val backup_shards : t -> node:int -> int list

(** [partition_of_node t ~partitions ~node] assigns nodes to engine
    partitions in contiguous blocks (sizes differing by at most one;
    identity when [partitions >= nodes]). Deterministic in (t,
    partitions, node) only — the parallel engine's node-to-partition
    map. *)
val partition_of_node : t -> partitions:int -> node:int -> int
