open Xenic_sim

type node_state = { mutable last_renew : float; mutable failed : bool; mutable dead : bool }

type t = {
  engine : Engine.t;
  lease_ns : float;
  nodes : node_state array;
  mutable epoch : int;
  mutable subscribers : (epoch:int -> dead:int list -> unit) list;
  mutable stopped : bool;
}

let create engine cfg ~lease_ns =
  {
    engine;
    lease_ns;
    nodes =
      Array.init cfg.Config.nodes (fun _ ->
          { last_renew = 0.0; failed = false; dead = false });
    epoch = 0;
    subscribers = [];
    stopped = false;
  }

let stop t = t.stopped <- true

let epoch t = t.epoch

let is_alive t n = not t.nodes.(n).dead

let alive_nodes t =
  Array.to_list (Array.mapi (fun i s -> (i, s)) t.nodes)
  |> List.filter_map (fun (i, s) -> if s.dead then None else Some i)

let fail_node t ~node = t.nodes.(node).failed <- true

let on_reconfigure t f = t.subscribers <- f :: t.subscribers

let check_expiry t =
  let now = Engine.now t.engine in
  let newly_dead =
    Array.to_list (Array.mapi (fun i s -> (i, s)) t.nodes)
    |> List.filter_map (fun (i, s) ->
           if
             (not s.dead)
             && Float.compare (now -. s.last_renew) t.lease_ns > 0
           then begin
             s.dead <- true;
             Some i
           end
           else None)
  in
  if newly_dead <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter (fun f -> f ~epoch:t.epoch ~dead:newly_dead) t.subscribers
  end

(* Renewal loop for one node; exits when the node fails or the service
   stops. [recover_node] respawns it for a node rejoining within its
   lease. *)
let renew_loop t s =
  let renew_period = t.lease_ns /. 3.0 in
  Process.spawn t.engine (fun () ->
      let rec loop () =
        if (not s.failed) && not t.stopped then begin
          s.last_renew <- Engine.now t.engine;
          Process.sleep t.engine renew_period;
          loop ()
        end
      in
      loop ())

let recover_node t ~node =
  let s = t.nodes.(node) in
  if s.dead then
    (* Fail-stop discipline: once the lease expired and the epoch moved
       past the node, it must not rejoin under its old identity — a
       flapping node that missed the declaration would otherwise be
       re-promoted with a stale epoch. It stays out; a real deployment
       would readmit it as a fresh member. *)
    false
  else begin
    (* Crash-and-return within the lease window: refresh the lease
       synchronously (so no expiry can fire between this instant and
       the loop's first renewal) and resume renewals. A node that never
       failed keeps its existing loop. *)
    s.last_renew <- Engine.now t.engine;
    if s.failed then begin
      s.failed <- false;
      if not t.stopped then renew_loop t s
    end;
    true
  end

let start t =
  Array.iteri
    (fun _i s -> s.last_renew <- Engine.now t.engine)
    t.nodes;
  (* Renewal loop per node. *)
  Array.iter (fun s -> renew_loop t s) t.nodes;
  (* Manager expiry checker. *)
  Process.spawn t.engine (fun () ->
      let rec loop () =
        Process.sleep t.engine (t.lease_ns /. 2.0);
        if not t.stopped then begin
          check_expiry t;
          if List.length (alive_nodes t) > 0 then loop ()
        end
      in
      loop ())
