open Xenic_sim

type node_state = { mutable last_renew : float; mutable failed : bool; mutable dead : bool }

type t = {
  engine : Engine.t;
  lease_ns : float;
  nodes : node_state array;
  mutable epoch : int;
  mutable subscribers : (epoch:int -> dead:int list -> unit) list;
  mutable stopped : bool;
}

let create engine cfg ~lease_ns =
  {
    engine;
    lease_ns;
    nodes =
      Array.init cfg.Config.nodes (fun _ ->
          { last_renew = 0.0; failed = false; dead = false });
    epoch = 0;
    subscribers = [];
    stopped = false;
  }

let stop t = t.stopped <- true

let epoch t = t.epoch

let is_alive t n = not t.nodes.(n).dead

let alive_nodes t =
  Array.to_list (Array.mapi (fun i s -> (i, s)) t.nodes)
  |> List.filter_map (fun (i, s) -> if s.dead then None else Some i)

let fail_node t ~node = t.nodes.(node).failed <- true

let on_reconfigure t f = t.subscribers <- f :: t.subscribers

let check_expiry t =
  let now = Engine.now t.engine in
  let newly_dead =
    Array.to_list (Array.mapi (fun i s -> (i, s)) t.nodes)
    |> List.filter_map (fun (i, s) ->
           if
             (not s.dead)
             && Float.compare (now -. s.last_renew) t.lease_ns > 0
           then begin
             s.dead <- true;
             Some i
           end
           else None)
  in
  if newly_dead <> [] then begin
    t.epoch <- t.epoch + 1;
    List.iter (fun f -> f ~epoch:t.epoch ~dead:newly_dead) t.subscribers
  end

let start t =
  let renew_period = t.lease_ns /. 3.0 in
  Array.iteri
    (fun _i s -> s.last_renew <- Engine.now t.engine)
    t.nodes;
  (* Renewal loop per node. *)
  Array.iter
    (fun s ->
      Process.spawn t.engine (fun () ->
          let rec loop () =
            if (not s.failed) && not t.stopped then begin
              s.last_renew <- Engine.now t.engine;
              Process.sleep t.engine renew_period;
              loop ()
            end
          in
          loop ()))
    t.nodes;
  (* Manager expiry checker. *)
  Process.spawn t.engine (fun () ->
      let rec loop () =
        Process.sleep t.engine (t.lease_ns /. 2.0);
        if not t.stopped then begin
          check_expiry t;
          if List.length (alive_nodes t) > 0 then loop ()
        end
      in
      loop ())
