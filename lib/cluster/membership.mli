(** Lease-based cluster membership (§4.2.1).

    A stand-in for the paper's ZooKeeper cluster manager: every node
    holds a lease and renews it periodically; the manager declares a
    node dead when its lease expires, bumps the configuration epoch,
    and notifies reconfiguration subscribers (who run recovery:
    promoting backups, rebuilding lock state). *)

type t

val create : Xenic_sim.Engine.t -> Config.t -> lease_ns:float -> t

(** Spawn the manager's expiry checker and each node's renewal loop. *)
val start : t -> unit

(** Shut the loops down: renewal and expiry processes exit at their
    next wakeup (within [lease_ns / 2]), letting the engine drain its
    event queue. Without this a started membership keeps the simulation
    alive forever. Idempotent. *)
val stop : t -> unit

(** Current configuration epoch (bumped on every membership change). *)
val epoch : t -> int

val is_alive : t -> int -> bool

val alive_nodes : t -> int list

(** Stop a node's renewals; its lease will expire and trigger
    reconfiguration (fault injection). *)
val fail_node : t -> node:int -> unit

(** [recover_node t ~node] readmits a node that crashed and returned
    {e within} its lease window: the lease is refreshed synchronously
    and renewals resume; returns [true]. If the lease already expired —
    the node was declared dead and the epoch moved past it — the
    request is refused ([false]) and the node stays out permanently:
    readmitting it under its old identity would let a flapping node be
    re-promoted with a stale epoch. Must be called after {!start};
    idempotent for a node that never failed. *)
val recover_node : t -> node:int -> bool

(** Subscribe to reconfiguration events: called with the new epoch and
    the nodes newly declared dead. *)
val on_reconfigure : t -> (epoch:int -> dead:int list -> unit) -> unit
