open Xenic_sim

type cell = {
  c_ctx : Attrib.ctx;
  c_wait_ns : float;
  c_waits : int;
  c_service_ns : float;
  c_services : int;
}

type row = {
  r_label : string;
  r_servers : int;
  r_busy_ns : float;
  r_utilization : float;
  r_service_ns : float;
  r_wait_ns : float;
  r_acquires : int;
  r_mean_wait_ns : float;
  r_queue_area : float;
  r_mean_qlen : float;
  r_cells : cell list;
}

type seg = { s_name : string; s_dur_ns : float }

type path = {
  p_node : int;
  p_seq : int;
  p_cls : string;
  p_start_ns : float;
  p_dur_ns : float;
  p_segs : seg list;
}

type t = {
  stack : string;
  elapsed_ns : float;
  rows : row list;
  paths : path list;
}

(* label -> (busy_ns, queue_area) at snapshot time *)
type baseline = (string * (float * float)) list

let baseline resources =
  List.map
    (fun (label, r) -> (label, (Resource.busy_time r, Resource.queue_area r)))
    resources

(* ------------------------------------------------------------------ *)
(* Collection *)

let row_of ~baseline ~elapsed_ns (label, r) =
  let b_busy, b_area =
    match List.assoc_opt label baseline with
    | Some (b, a) -> (b, a)
    | None -> (0.0, 0.0)
  in
  let busy = Resource.busy_time r -. b_busy in
  let area = Resource.queue_area r -. b_area in
  let cells =
    List.map
      (fun (ctx, (v : Resource.stat_view)) ->
        {
          c_ctx = ctx;
          c_wait_ns = v.Resource.v_wait_ns;
          c_waits = v.Resource.v_waits;
          c_service_ns = v.Resource.v_service_ns;
          c_services = v.Resource.v_services;
        })
      (Resource.stats r)
  in
  let sum f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells in
  let sumi f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  let wait = sum (fun c -> c.c_wait_ns) in
  let acquires = sumi (fun c -> c.c_waits) in
  let servers = Resource.servers r in
  {
    r_label = label;
    r_servers = servers;
    r_busy_ns = busy;
    r_utilization =
      (if Float.compare elapsed_ns 0.0 <= 0 then 0.0
       else busy /. (float_of_int servers *. elapsed_ns));
    r_service_ns = sum (fun c -> c.c_service_ns);
    r_wait_ns = wait;
    r_acquires = acquires;
    r_mean_wait_ns = (if acquires = 0 then 0.0 else wait /. float_of_int acquires);
    r_queue_area = area;
    r_mean_qlen =
      (if Float.compare elapsed_ns 0.0 <= 0 then 0.0 else area /. elapsed_ns);
    r_cells = cells;
  }

(* Slice a committed transaction's outer span into its recorded phase
   spans plus "other" gaps. Spans are closed at phase end, so sorting by
   start time walks them in protocol order; overlap (never produced by
   the protocol layer, but cheap to tolerate) is clipped so segments
   always partition the outer duration exactly. *)
let segs_of ~t_start ~t_end phase_spans =
  let spans =
    List.sort
      (fun (ts1, _, _) (ts2, _, _) -> Float.compare ts1 ts2)
      phase_spans
  in
  let eps = 1e-9 in
  let rec walk cur acc = function
    | [] ->
        let acc =
          if Float.compare (t_end -. cur) eps > 0 then
            { s_name = "other"; s_dur_ns = t_end -. cur } :: acc
          else acc
        in
        List.rev acc
    | (ts, dur, name) :: rest ->
        let ts = Float.max ts cur in
        let fin = Float.min (ts +. dur) t_end in
        let acc =
          if Float.compare (ts -. cur) eps > 0 then
            { s_name = "other"; s_dur_ns = ts -. cur } :: acc
          else acc
        in
        let acc =
          if Float.compare (fin -. ts) eps > 0 then
            { s_name = name; s_dur_ns = fin -. ts } :: acc
          else acc
        in
        walk (Float.max cur fin) acc rest
  in
  walk t_start [] spans

let extract_paths trace =
  (* Outer transaction spans keyed by (node, committed-attempt seq);
     phase spans (cat "txn") with the same key and inside the outer
     bounds slice it. Asynchronous commit-apply spans use a different
     category ("txn-async") precisely so they are excluded here. *)
  let outers = ref [] in
  let phases = Hashtbl.create 256 in
  List.iter
    (function
      | Trace.Span { cat = "txnlat"; pid; tid; ts; dur; args; _ } ->
          let cls =
            match List.assoc_opt "cls" args with Some c -> c | None -> "-"
          in
          outers := (pid, tid, ts, dur, cls) :: !outers
      | Trace.Span { cat = "txn"; name; pid; tid; ts; dur; _ } ->
          Hashtbl.replace phases (pid, tid)
            ((ts, dur, name)
            :: Option.value ~default:[] (Hashtbl.find_opt phases (pid, tid)))
      | _ -> ())
    (Trace.events trace);
  !outers
  |> List.rev_map (fun (pid, tid, ts, dur, cls) ->
         let inside =
           Option.value ~default:[] (Hashtbl.find_opt phases (pid, tid))
           |> List.filter (fun (pts, pdur, _) ->
                  Float.compare pts (ts -. 1e-9) >= 0
                  && Float.compare (pts +. pdur) (ts +. dur +. 1e-9) <= 0)
         in
         {
           p_node = pid;
           p_seq = tid;
           p_cls = cls;
           p_start_ns = ts;
           p_dur_ns = dur;
           p_segs = segs_of ~t_start:ts ~t_end:(ts +. dur) inside;
         })
  |> List.sort (fun a b ->
         let c = Float.compare a.p_start_ns b.p_start_ns in
         if c <> 0 then c
         else
           let c = Int.compare a.p_node b.p_node in
           if c <> 0 then c else Int.compare a.p_seq b.p_seq)

let collect ~stack ~resources ?(baseline = []) ?trace ~elapsed_ns () =
  let rows =
    List.map (row_of ~baseline ~elapsed_ns) resources
    |> List.filter (fun r ->
           Float.compare r.r_busy_ns 0.0 > 0 || r.r_acquires > 0)
    |> List.sort (fun a b ->
           let c = Float.compare b.r_utilization a.r_utilization in
           if c <> 0 then c else String.compare a.r_label b.r_label)
  in
  let paths = match trace with None -> [] | Some tr -> extract_paths tr in
  { stack; elapsed_ns; rows; paths }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let known_phases =
  [ "execute"; "exec-fn"; "validate"; "log"; "commit"; "commit-async";
    "dispatch"; "log-apply" ]

let ms ns = ns /. 1e6

let us ns = ns /. 1e3

let bottleneck_table t =
  let tbl =
    Xenic_stats.Table.create
      ~title:(Printf.sprintf "%s -- resource bottlenecks" t.stack)
      ~columns:
        [ "resource"; "srv"; "util%"; "busy ms"; "svc ms"; "wait ms";
          "grants"; "mwait us"; "qlen" ]
  in
  List.iter
    (fun r ->
      Xenic_stats.Table.add_row tbl
        [
          r.r_label;
          string_of_int r.r_servers;
          Xenic_stats.Table.cellf ~decimals:1 (100.0 *. r.r_utilization);
          Xenic_stats.Table.cellf ~decimals:3 (ms r.r_busy_ns);
          Xenic_stats.Table.cellf ~decimals:3 (ms r.r_service_ns);
          Xenic_stats.Table.cellf ~decimals:3 (ms r.r_wait_ns);
          string_of_int r.r_acquires;
          Xenic_stats.Table.cellf ~decimals:2 (us r.r_mean_wait_ns);
          Xenic_stats.Table.cellf ~decimals:3 r.r_mean_qlen;
        ])
    t.rows;
  Xenic_stats.Table.render tbl

let phase_matrix t =
  let tbl =
    Xenic_stats.Table.create
      ~title:(Printf.sprintf "%s -- service ms by resource x phase" t.stack)
      ~columns:("resource" :: (known_phases @ [ "other" ]))
  in
  List.iter
    (fun r ->
      let by_phase phase =
        List.fold_left
          (fun acc c ->
            if String.equal c.c_ctx.Attrib.phase phase then
              acc +. c.c_service_ns
            else acc)
          0.0 r.r_cells
      in
      let other =
        List.fold_left
          (fun acc c ->
            if List.mem c.c_ctx.Attrib.phase known_phases then acc
            else acc +. c.c_service_ns)
          0.0 r.r_cells
      in
      Xenic_stats.Table.add_row tbl
        (r.r_label
        :: (List.map
              (fun p -> Xenic_stats.Table.cellf ~decimals:3 (ms (by_phase p)))
              known_phases
           @ [ Xenic_stats.Table.cellf ~decimals:3 (ms other) ])))
    t.rows;
  Xenic_stats.Table.render tbl

(* Group critical paths by (class, phase-name signature); report the
   heaviest shapes with mean per-segment time. *)
let path_groups t =
  let key p = (p.p_cls, List.map (fun s -> s.s_name) p.p_segs) in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let k = key p in
      let count, total, segs =
        Option.value ~default:(0, 0.0, List.map (fun _ -> 0.0) p.p_segs)
          (Hashtbl.find_opt groups k)
      in
      Hashtbl.replace groups k
        ( count + 1,
          total +. p.p_dur_ns,
          List.map2 (fun acc s -> acc +. s.s_dur_ns) segs p.p_segs ))
    t.paths;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
  |> List.sort (fun ((cls1, sig1), (_, tot1, _)) ((cls2, sig2), (_, tot2, _)) ->
         let c = Float.compare tot2 tot1 in
         if c <> 0 then c
         else
           let c = String.compare cls1 cls2 in
           if c <> 0 then c else List.compare String.compare sig1 sig2)

let critical_paths ?(top_k = 5) t =
  if t.paths = [] then "  (no critical paths: run without a trace)\n"
  else begin
    let buf = Buffer.create 1024 in
    let total_ns =
      List.fold_left (fun acc p -> acc +. p.p_dur_ns) 0.0 t.paths
    in
    Buffer.add_string buf
      (Printf.sprintf
         "%s -- top critical paths (%d committed txns, %.3f ms total)\n"
         t.stack (List.length t.paths) (ms total_ns));
    let groups = path_groups t in
    List.iteri
      (fun i ((cls, names), (count, total, seg_sums)) ->
        if i < top_k then begin
          Buffer.add_string buf
            (Printf.sprintf "  #%d %s x%d: %.3f ms total, %.2f us mean\n"
               (i + 1) cls count (ms total)
               (us (total /. float_of_int count)));
          List.iter2
            (fun name sum ->
              Buffer.add_string buf
                (Printf.sprintf "      %-12s %8.2f us mean\n" name
                   (us (sum /. float_of_int count))))
            names seg_sums
        end)
      groups;
    let shown = min top_k (List.length groups) in
    if List.length groups > shown then
      Buffer.add_string buf
        (Printf.sprintf "  (%d further path shapes omitted)\n"
           (List.length groups - shown));
    Buffer.contents buf
  end

let report ?top_k t =
  String.concat "\n"
    [
      Printf.sprintf "== Profile: %s (%.3f ms measured) ==" t.stack
        (ms t.elapsed_ns);
      bottleneck_table t;
      phase_matrix t;
      critical_paths ?top_k t;
    ]

let folded t =
  let lines = ref [] in
  let add ctx label kind ns =
    let w = int_of_float (Float.round ns) in
    if w > 0 then
      lines :=
        Printf.sprintf "%s;n%d;%s;%s;%s;%s %d" t.stack ctx.Attrib.node
          ctx.Attrib.cls ctx.Attrib.phase label kind w
        :: !lines
  in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          add c.c_ctx r.r_label "service" c.c_service_ns;
          add c.c_ctx r.r_label "wait" c.c_wait_ns)
        r.r_cells)
    t.rows;
  String.concat "\n" (List.sort String.compare !lines) ^ "\n"

let busy_agreement t =
  List.map (fun r -> (r.r_label, r.r_busy_ns, r.r_service_ns)) t.rows

let little_check t =
  List.map (fun r -> (r.r_label, r.r_queue_area, r.r_wait_ns)) t.rows
