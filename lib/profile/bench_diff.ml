type finding = {
  key : string;
  a : float option;
  b : float option;
  rel : float option;
  out_of_tol : bool;
}

(* The bench harness emits a fixed shape (see bench/common.ml
   json_write): one "metrics" object whose entries are each on their own
   line, `"key": token` with token a %.6g float, an integer, or null.
   Parse exactly that — not general JSON. *)
let load_metrics path =
  let lines =
    try
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    with Sys_error e -> failwith (Printf.sprintf "bench diff: %s" e)
  in
  let metrics = ref [] in
  let in_metrics = ref false in
  let parse_entry line =
    (* `"key": token` with an optional trailing comma; keys were emitted
       with %S, so unescape via Scanf. *)
    let line = String.trim line in
    let line =
      if String.length line > 0 && line.[String.length line - 1] = ',' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    match String.rindex_opt line ':' with
    | None -> ()
    | Some i ->
        let key_part = String.trim (String.sub line 0 i) in
        let val_part =
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        in
        let key =
          try Scanf.sscanf key_part "%S" (fun s -> s)
          with Scanf.Scan_failure _ | End_of_file -> key_part
        in
        let v =
          if String.equal val_part "null" then None
          else
            match float_of_string_opt val_part with
            | Some f -> Some f
            | None ->
                (* A value that is neither a number nor null is a shape
                   error, not a regression; fail naming the key rather
                   than silently treating it as missing. *)
                failwith
                  (Printf.sprintf
                     "bench diff: %s: metric %S has non-numeric value %s"
                     path key val_part)
        in
        (* Keys containing ':' would split wrong at rindex only if the
           value also contained one; bench values never do. *)
        metrics := (key, v) :: !metrics
  in
  List.iter
    (fun line ->
      if !in_metrics then begin
        if String.trim line = "}" || String.trim line = "}," then
          in_metrics := false
        else parse_entry line
      end
      else if
        (* `"metrics": {}` (empty) never opens the block. *)
        String.length (String.trim line) >= 11
        && String.sub (String.trim line) 0 10 = "\"metrics\":"
        && not (String.length (String.trim line) >= 13
                && String.sub (String.trim line) 0 13 = "\"metrics\": {}")
      then in_metrics := true)
    lines;
  List.rev !metrics

let compare_one ~tol key a b =
  match (a, b) with
  | None, None -> { key; a; b; rel = None; out_of_tol = false }
  | Some _, None | None, Some _ ->
      (* Present on one side only (or became null): always a finding. *)
      { key; a; b; rel = None; out_of_tol = true }
  | Some va, Some vb ->
      if Float.equal va 0.0 then
        { key; a; b; rel = None; out_of_tol = not (Float.equal vb 0.0) }
      else
        let rel = (vb -. va) /. Float.abs va in
        { key; a; b; rel = Some rel; out_of_tol = Float.abs rel > tol }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let diff ?(ignore_prefixes = []) ~tol a b =
  (* Keys under an ignored prefix never produce findings: they hold
     machine-dependent values (wall-clock measurements) that a
     byte-identity gate must not trip on. *)
  let kept (k, _) =
    not (List.exists (fun prefix -> has_prefix ~prefix k) ignore_prefixes)
  in
  let a = List.filter kept a and b = List.filter kept b in
  let a_keys = List.map fst a in
  let b_only = List.filter (fun (k, _) -> not (List.mem k a_keys)) b in
  List.map
    (fun (k, va) -> compare_one ~tol k va (Option.join (List.assoc_opt k b)))
    a
  @ List.map (fun (k, vb) -> compare_one ~tol k None vb) b_only

let regressed findings = List.exists (fun f -> f.out_of_tol) findings

let render ~tol findings =
  let tbl =
    Xenic_stats.Table.create
      ~title:(Printf.sprintf "bench diff (tol %.3g)" tol)
      ~columns:[ "metric"; "A"; "B"; "delta%"; "" ]
  in
  let cell = function
    | None -> "-"
    | Some v -> Printf.sprintf "%.6g" v
  in
  List.iter
    (fun f ->
      Xenic_stats.Table.add_row tbl
        [
          f.key;
          cell f.a;
          cell f.b;
          (match f.rel with
          | None -> "-"
          | Some r -> Printf.sprintf "%+.2f" (100.0 *. r));
          (if f.out_of_tol then "REGRESSED" else "ok");
        ])
    findings;
  let bad = List.length (List.filter (fun f -> f.out_of_tol) findings) in
  Xenic_stats.Table.render tbl
  ^ Printf.sprintf "\n%d/%d metrics out of tolerance: %s\n" bad
      (List.length findings)
      (if bad = 0 then "PASS" else "FAIL")
