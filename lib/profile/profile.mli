(** Time-attribution profiler: turns the per-context wait/service
    accounting of {!Xenic_sim.Resource} and the transaction spans of
    {!Xenic_sim.Trace} into a bottleneck report, a collapsed-stack
    flamegraph, and per-transaction critical paths.

    Every output is deterministic: rows and lines are sorted by
    explicit comparators over simulated-time quantities only, so
    same-seed runs render byte-identical text. *)

(** One (resource, context) accounting cell. *)
type cell = {
  c_ctx : Xenic_sim.Attrib.ctx;
  c_wait_ns : float;
  c_waits : int;
  c_service_ns : float;
  c_services : int;
}

(** One resource's aggregate accounting over the measured window. *)
type row = {
  r_label : string;
  r_servers : int;
  r_busy_ns : float;  (** integrated busy server-ns ({!Xenic_sim.Resource.busy_time}) *)
  r_utilization : float;  (** busy / (servers * elapsed), in [0, 1] *)
  r_service_ns : float;  (** Σ attributed service over all contexts *)
  r_wait_ns : float;  (** Σ attributed queue wait over all contexts *)
  r_acquires : int;  (** completed grants *)
  r_mean_wait_ns : float;  (** wait / acquires (0 when idle) *)
  r_queue_area : float;  (** ∫ queue-length dt, waiter-ns *)
  r_mean_qlen : float;  (** queue_area / elapsed — Little's-law queue length *)
  r_cells : cell list;  (** per-context cells, {!Xenic_sim.Attrib.compare_ctx} order *)
}

(** One critical-path segment: a protocol phase (or "other" for time
    between recorded phases). *)
type seg = { s_name : string; s_dur_ns : float }

(** One committed transaction's critical path, sliced from its outer
    "txnlat" span: segments partition [p_dur_ns] exactly. *)
type path = {
  p_node : int;
  p_seq : int;
  p_cls : string;
  p_start_ns : float;
  p_dur_ns : float;
  p_segs : seg list;
}

type t = {
  stack : string;
  elapsed_ns : float;
  rows : row list;  (** busy resources, utilization-descending *)
  paths : path list;  (** committed txns, (start, node, seq) order *)
}

(** Opaque pre-measurement snapshot. Busy time and queue area integrate
    from resource creation; snapshotting at Attrib-enable time and
    passing the result to {!collect} restricts both to the measured
    window (attributed stats are already gated on [Attrib.enabled]). *)
type baseline

val baseline : (string * Xenic_sim.Resource.t) list -> baseline

(** [collect ~stack ~resources ?baseline ?trace ~elapsed_ns ()] snapshots
    every labeled resource and, when a trace is given, extracts committed
    transactions' critical paths from its "txnlat"/"txn" spans.
    [elapsed_ns] is the measured-window length used for utilization and
    mean queue length. *)
val collect :
  stack:string ->
  resources:(string * Xenic_sim.Resource.t) list ->
  ?baseline:baseline ->
  ?trace:Xenic_sim.Trace.t ->
  elapsed_ns:float ->
  unit ->
  t

(** Bottleneck report: per-resource utilization/wait/service table (with
    the Little's-law queue length), a resource × phase service-time
    matrix, and the top-[top_k] (default 5) critical-path shapes by
    total time. Deterministic text. *)
val report : ?top_k:int -> t -> string

(** Collapsed-stack flamegraph ("folded" format, one
    [frame;frame;... weight] line per non-zero cell, weights in integer
    ns, lines sorted): service and wait time per
    stack;node;class;phase;resource. Feed to any flamegraph renderer. *)
val folded : t -> string

(** [(label, busy_ns, attributed_service_ns)] per busy resource — the
    accounting cross-check: the two agree to within float rounding once
    every grant is released. *)
val busy_agreement : t -> (string * float * float) list

(** [(label, queue_area, attributed_wait_ns)] per busy resource — the
    Little's-law cross-check: with the queue drained and all waits
    recorded inside the window, the two are equal. *)
val little_check : t -> (string * float * float) list
