(** Compare two BENCH_*.json metric maps with a relative tolerance —
    the regression gate behind [xenicctl bench diff]. *)

(** One metric's comparison. [rel] is (b - a) / |a| when both sides are
    present and the reference is nonzero. *)
type finding = {
  key : string;
  a : float option;  (** reference value (None: missing or null) *)
  b : float option;  (** candidate value *)
  rel : float option;
  out_of_tol : bool;
}

(** Parse the ["metrics"] object of a BENCH_*.json file into
    [(key, value)] pairs in file order; [None] for [null] values.
    Raises [Failure] on unreadable or unparseable input. *)
val load_metrics : string -> (string * float option) list

(** Compare reference [a] against candidate [b]: a metric is out of
    tolerance when present on only one side, or when its relative delta
    exceeds [tol]. Keys follow [a]'s order, then [b]-only keys. Keys
    starting with any of [ignore_prefixes] are dropped from both sides
    before comparing — used to exclude wall-clock (machine-dependent)
    metrics such as the ["wallclock ..."] keys of BENCH_scale.json from
    a [tol = 0] byte-identity gate. *)
val diff :
  ?ignore_prefixes:string list ->
  tol:float ->
  (string * float option) list ->
  (string * float option) list ->
  finding list

(** True if any finding is out of tolerance. *)
val regressed : finding list -> bool

(** Per-metric delta table plus a verdict line. Deterministic text. *)
val render : tol:float -> finding list -> string
