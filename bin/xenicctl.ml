(* xenicctl: run a transaction benchmark on any of the five systems
   with custom cluster/load parameters.

     dune exec bin/xenicctl.exe -- run --system xenic --workload smallbank \
       --nodes 6 --concurrency 16 --target 20000 *)

open Cmdliner
open Xenic_cluster
open Xenic_proto
open Xenic_workload

type system_kind = Xenic | Drtmh | Drtmh_nc | Fasst | Drtmr | Farm

let system_conv =
  Arg.enum
    [
      ("xenic", Xenic);
      ("drtmh", Drtmh);
      ("farm", Farm);
      ("drtmh-nc", Drtmh_nc);
      ("fasst", Fasst);
      ("drtmr", Drtmr);
    ]

type workload_kind = Smallbank | Retwis | Tpcc | Tpcc_no

let workload_conv =
  Arg.enum
    [
      ("smallbank", Smallbank);
      ("retwis", Retwis);
      ("tpcc", Tpcc);
      ("tpcc-neworder", Tpcc_no);
    ]

let build_system kind ~nodes ~replication ~store_cfg ~buckets ~cache =
  let engine = Xenic_sim.Engine.create () in
  let cfg = Config.make ~nodes ~replication in
  let hw = Xenic_params.Hw.testbed in
  match kind with
  | Xenic ->
      let segments, seg_size, d_max = store_cfg in
      System.of_xenic
        (Xenic_system.create engine hw cfg
           {
             Xenic_system.default_params with
             segments;
             seg_size;
             d_max;
             cache_capacity = cache;
             app_threads = 8;
             worker_threads = 8;
           })
  | (Drtmh | Drtmh_nc | Fasst | Drtmr | Farm) as k ->
      let flavor =
        match k with
        | Drtmh -> Rdma_system.Drtmh
        | Drtmh_nc -> Rdma_system.Drtmh_nc
        | Fasst -> Rdma_system.Fasst
        | Farm -> Rdma_system.Farm
        | _ -> Rdma_system.Drtmr
      in
      System.of_rdma
        (Rdma_system.create engine hw cfg flavor
           { Rdma_system.default_params with buckets })

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Shared driver for the [run], [trace], [profile] and [telemetry]
   subcommands; [trace_out] attaches an execution trace and writes it as
   Chrome trace JSON; [profile_out] enables time attribution and writes
   the bottleneck report plus the collapsed-stack flamegraph;
   [telemetry_out] attaches the windowed flight recorder and writes the
   series as BENCH-style JSON and OpenMetrics text. *)
let execute ?trace_out ?profile_out ?telemetry_out
    ?(telemetry_window_us = 100.0) ?(slo_latency_us = 100.0)
    ?(slo_target = 0.99) system workload nodes replication
    concurrency target scale seed =
  let sb = { Smallbank.default_params with accounts_per_node = scale } in
  let rw = { Retwis.default_params with keys_per_node = scale } in
  let tp =
    {
      Tpcc.default_params with
      warehouses_per_node = max 2 (scale / 2_500);
      customers_per_district = 30;
      items = max 200 (scale / 20);
    }
  in
  let store_cfg, buckets, cache, load, spec =
    match workload with
    | Smallbank ->
        ( Smallbank.store_cfg sb,
          Smallbank.chained_buckets sb,
          2 * sb.Smallbank.accounts_per_node,
          Smallbank.load sb,
          fun sys ->
            Smallbank.spec sb ~nodes:sys.System.cfg.Config.nodes )
    | Retwis ->
        ( Retwis.store_cfg rw,
          Retwis.chained_buckets rw,
          rw.Retwis.keys_per_node,
          Retwis.load rw,
          fun sys -> Retwis.spec rw ~nodes:sys.System.cfg.Config.nodes )
    | Tpcc ->
        ( Tpcc.store_cfg tp,
          Tpcc.chained_buckets tp,
          Tpcc.hash_keys_per_shard tp,
          Tpcc.load tp,
          fun sys -> Tpcc.spec tp sys )
    | Tpcc_no ->
        let tp = { tp with Tpcc.uniform_item_partitions = true } in
        ( Tpcc.store_cfg tp,
          Tpcc.chained_buckets tp,
          Tpcc.hash_keys_per_shard tp,
          Tpcc.load tp,
          fun sys -> Tpcc.new_order_spec tp sys )
  in
  let sys =
    build_system system ~nodes ~replication ~store_cfg ~buckets ~cache
  in
  let wl_name =
    match workload with
    | Smallbank -> "smallbank"
    | Retwis -> "retwis"
    | Tpcc -> "tpcc"
    | Tpcc_no -> "tpcc-neworder"
  in
  Printf.printf "loading %s on %s (%d nodes, rf=%d)...\n%!" wl_name
    sys.System.name nodes replication;
  load sys;
  let trace =
    match trace_out with
    | None -> None
    | Some _ -> Some (Xenic_sim.Trace.create sys.System.engine)
  in
  let telemetry =
    match telemetry_out with
    | None -> None
    | Some _ ->
        Some
          (Xenic_telemetry.Telemetry.create
             ~window_ns:(telemetry_window_us *. 1e3)
             sys.System.engine)
  in
  let profile = profile_out <> None in
  let result =
    Driver.run ~seed:(Int64.of_int seed) ?trace ?telemetry ~profile sys
      (spec sys) ~concurrency ~target
  in
  Printf.printf
    "%s: %.0f txn/s/server, median %.1fus, p99 %.1fus, abort rate %.1f%%\n"
    sys.System.name result.Driver.tput_per_server
    result.Driver.median_latency_us result.Driver.p99_latency_us
    (100.0 *. result.Driver.abort_rate);
  List.iter
    (fun (k, v) -> Printf.printf "  %-24s %.0f\n" k v)
    (Xenic_stats.Counter.to_list (Metrics.counters (sys.System.metrics ())));
  (match (telemetry_out, telemetry) with
  | Some base, Some tel ->
      let open Xenic_telemetry in
      let roll = Telemetry.rollup tel in
      let t =
        Xenic_stats.Table.create ~title:"Telemetry windows"
          ~columns:
            [
              "win"; "start us"; "offered"; "admitted"; "committed";
              "aborted"; "shed"; "q mean"; "p50 us"; "p99 us";
            ]
      in
      Array.iter
        (fun (a : Telemetry.agg) ->
          Xenic_stats.Table.add_row t
            [
              string_of_int a.Telemetry.a_win;
              Xenic_stats.Table.cellf ~decimals:0
                (a.Telemetry.a_start_ns /. 1e3);
              string_of_int a.Telemetry.a_offered;
              string_of_int a.Telemetry.a_admitted;
              string_of_int a.Telemetry.a_committed;
              string_of_int a.Telemetry.a_aborted;
              string_of_int a.Telemetry.a_shed;
              Xenic_stats.Table.cellf ~decimals:1 a.Telemetry.a_q_mean;
              Xenic_stats.Table.cellf ~decimals:1
                (Xenic_stats.Whist.median a.Telemetry.a_lat /. 1e3);
              Xenic_stats.Table.cellf ~decimals:1
                (Xenic_stats.Whist.p99 a.Telemetry.a_lat /. 1e3);
            ])
        roll;
      Xenic_stats.Table.print t;
      let slo =
        { Detect.latency_ns = slo_latency_us *. 1e3; target = slo_target }
      in
      List.iter
        (fun (dname, (v : Detect.verdict)) ->
          Printf.printf "  detect %-12s %s (%s)\n" dname
            (if v.Detect.flagged then "FLAGGED" else "clean")
            v.Detect.detail)
        [
          ("retry-storm", Detect.retry_storm roll);
          ("queue-growth", Detect.queue_growth roll);
          ("littles-law", Detect.littles_law roll);
          ("slo-burn", Detect.slo_burn slo roll);
        ];
      write_file (base ^ ".json")
        (Telemetry.to_json tel ~id:"telemetry"
           ~description:(sys.System.name ^ " " ^ wl_name));
      let om = Telemetry.to_openmetrics tel in
      (match Telemetry.validate_openmetrics om with
      | Ok () -> ()
      | Error e -> failwith ("telemetry: invalid OpenMetrics output: " ^ e));
      write_file (base ^ ".prom") om;
      Printf.printf
        "wrote telemetry series to %s.json, OpenMetrics to %s.prom\n" base
        base
  | _ -> ());
  (match (profile_out, result.Driver.profile) with
  | Some base, Some prof ->
      let report = Xenic_profile.Profile.report prof in
      let folded = Xenic_profile.Profile.folded prof in
      let write = write_file in
      write (base ^ ".txt") report;
      write (base ^ ".folded") folded;
      print_string report;
      Printf.printf "wrote bottleneck report to %s.txt, flamegraph to %s.folded\n"
        base base
  | _ -> ());
  match (trace_out, trace) with
  | Some path, Some tr ->
      Xenic_sim.Trace.write_chrome_json tr path;
      Printf.printf "wrote %d trace events (%d dropped) to %s\n"
        (Xenic_sim.Trace.count tr)
        (Xenic_sim.Trace.dropped tr)
        path;
      if Xenic_sim.Trace.dropped tr > 0 then
        Printf.printf
          "WARNING: %d trace events were dropped at the buffer limit; the \
           trace is truncated and not comparable across runs. Lower the \
           target or raise the trace limit.\n"
          (Xenic_sim.Trace.dropped tr);
      let m = sys.System.metrics () in
      let t =
        Xenic_stats.Table.create ~title:"Per-phase latency breakdown"
          ~columns:[ "phase"; "count"; "mean us"; "med us"; "p99 us" ]
      in
      List.iter
        (fun (phase, h) ->
          Xenic_stats.Table.add_row t
            [
              phase;
              string_of_int (Xenic_stats.Histogram.count h);
              Xenic_stats.Table.cellf ~decimals:2
                (Xenic_stats.Histogram.mean h /. 1_000.0);
              Xenic_stats.Table.cellf ~decimals:2
                (Xenic_stats.Histogram.median h /. 1_000.0);
              Xenic_stats.Table.cellf ~decimals:2
                (Xenic_stats.Histogram.p99 h /. 1_000.0);
            ])
        (Metrics.phase_stats m);
      Xenic_stats.Table.print t;
      let ar =
        Xenic_stats.Table.create ~title:"Aborts by reason"
          ~columns:[ "reason"; "count" ]
      in
      List.iter
        (fun (reason, n) ->
          Xenic_stats.Table.add_row ar [ reason; string_of_int n ])
        (Metrics.abort_reason_counts m);
      Xenic_stats.Table.print ar
  | _ -> ()

let run_cmd system workload nodes replication concurrency target scale seed =
  execute system workload nodes replication concurrency target scale seed

let trace_cmd out system workload nodes replication concurrency target scale
    seed =
  execute ~trace_out:out system workload nodes replication concurrency target
    scale seed

let profile_cmd out system workload nodes replication concurrency target
    scale seed =
  execute ~profile_out:out system workload nodes replication concurrency
    target scale seed

let telemetry_cmd out window_us slo_latency_us slo_target system workload
    nodes replication concurrency target scale seed =
  execute ~telemetry_out:out ~telemetry_window_us:window_us ~slo_latency_us
    ~slo_target system workload nodes replication concurrency target scale
    seed

(* [bench diff]: compare two BENCH_*.json metric files with a relative
   tolerance; exit nonzero when any metric is out of tolerance. *)
let bench_diff_cmd a b tol ignore_prefixes =
  match
    ( Xenic_profile.Bench_diff.load_metrics a,
      Xenic_profile.Bench_diff.load_metrics b )
  with
  | exception Failure e ->
      Printf.eprintf "bench diff: %s\n" e;
      exit 2
  | ma, mb ->
      let findings =
        Xenic_profile.Bench_diff.diff ~ignore_prefixes ~tol ma mb
      in
      Printf.printf "bench diff: %s (reference) vs %s (candidate)\n" a b;
      print_string (Xenic_profile.Bench_diff.render ~tol findings);
      if Xenic_profile.Bench_diff.regressed findings then exit 1

(* [scenario run]: load a declarative scenario file, validate it and
   drive it on the chosen stack under the scenario harness (strict
   engine + serializability oracle), then print the outcome. *)
let scenario_run_cmd file stack seed target concurrency verbose =
  let module Scenario = Xenic_scenario.Scenario in
  let module Harness = Xenic_scenario.Harness in
  let stack =
    match Harness.stack_of_string stack with
    | Some s -> s
    | None ->
        Printf.eprintf
          "scenario run: unknown stack %S (expected one of: %s)\n" stack
          (String.concat ", " (List.map Harness.stack_name Harness.all_stacks));
        exit 2
  in
  match Scenario.load_file file with
  | Error msg ->
      Printf.eprintf "scenario run: %s: %s\n" file msg;
      exit 2
  | Ok scn -> (
      Printf.printf "scenario %s: %d nodes, %d events, %d phases (%s)\n"
        scn.Scenario.name scn.Scenario.nodes
        (List.length scn.Scenario.events)
        (List.length scn.Scenario.phases)
        (if Scenario.has_phases scn then "open-loop Retwis"
         else "closed-loop Smallbank");
      match
        Harness.run ~stack ~seed:(Int64.of_int seed) ~target ~concurrency scn
      with
      | exception Failure msg ->
          Printf.eprintf "scenario run: %s\n" msg;
          exit 1
      | exception Invalid_argument msg ->
          Printf.eprintf "scenario run: invalid scenario: %s\n" msg;
          exit 2
      | o ->
          Printf.printf
            "stack %s seed %d: committed=%d aborted=%d oracle_txns=%d \
             (serializable)\n"
            (Harness.stack_name stack) seed o.Harness.committed
            o.Harness.aborted o.Harness.oracle_txns;
          List.iter
            (fun (k, v) ->
              if Float.compare v 0.0 <> 0 then
                Printf.printf "  %-32s %.6g\n" k v)
            (List.sort compare o.Harness.counters);
          if verbose then Printf.printf "digest %s\n" o.Harness.digest)

let cmd =
  let system =
    Arg.(value & opt system_conv Xenic & info [ "system"; "s" ] ~doc:"System to run: xenic, drtmh, drtmh-nc, fasst, drtmr.")
  in
  let workload =
    Arg.(value & opt workload_conv Smallbank & info [ "workload"; "w" ] ~doc:"Workload: smallbank, retwis, tpcc, tpcc-neworder.")
  in
  let nodes = Arg.(value & opt int 6 & info [ "nodes" ] ~doc:"Cluster size.") in
  let replication =
    Arg.(value & opt int 3 & info [ "replication" ] ~doc:"Copies per shard.")
  in
  let concurrency =
    Arg.(value & opt int 16 & info [ "concurrency"; "c" ] ~doc:"Outstanding transactions per node.")
  in
  let target =
    Arg.(value & opt int 10_000 & info [ "target"; "n" ] ~doc:"Committed-transaction target.")
  in
  let scale =
    Arg.(value & opt int 20_000 & info [ "scale" ] ~doc:"Keys/accounts per node (drives TPC-C warehouses).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Workload RNG seed.") in
  let out =
    Arg.(
      value
      & opt string "xenic_trace.json"
      & info [ "out"; "o" ]
          ~doc:"Trace output path (Chrome trace_event JSON).")
  in
  let run_term =
    Term.(
      const run_cmd $ system $ workload $ nodes $ replication $ concurrency
      $ target $ scale $ seed)
  in
  let trace_term =
    Term.(
      const trace_cmd $ out $ system $ workload $ nodes $ replication
      $ concurrency $ target $ scale $ seed)
  in
  let profile_out =
    Arg.(
      value
      & opt string "xenic_profile"
      & info [ "out"; "o" ]
          ~doc:
            "Output path prefix: writes $(i,PREFIX).txt (bottleneck \
             report) and $(i,PREFIX).folded (collapsed-stack flamegraph).")
  in
  let profile_term =
    Term.(
      const profile_cmd $ profile_out $ system $ workload $ nodes
      $ replication $ concurrency $ target $ scale $ seed)
  in
  let telemetry_out =
    Arg.(
      value
      & opt string "xenic_telemetry"
      & info [ "out"; "o" ]
          ~doc:
            "Output path prefix: writes $(i,PREFIX).json (BENCH-style \
             flat metrics, byte-gateable with $(b,xenicctl bench diff)) \
             and $(i,PREFIX).prom (OpenMetrics text exposition).")
  in
  let telemetry_window =
    Arg.(
      value & opt float 100.0
      & info [ "window-us" ] ~doc:"Telemetry window width in microseconds.")
  in
  let slo_latency =
    Arg.(
      value & opt float 100.0
      & info [ "slo-latency-us" ]
          ~doc:"Latency objective for the SLO burn-rate detector.")
  in
  let slo_target =
    Arg.(
      value & opt float 0.99
      & info [ "slo-target" ]
          ~doc:
            "Fraction of offered requests that should commit within the \
             latency objective (in (0, 1)).")
  in
  let telemetry_term =
    Term.(
      const telemetry_cmd $ telemetry_out $ telemetry_window $ slo_latency
      $ slo_target $ system $ workload $ nodes $ replication $ concurrency
      $ target $ scale $ seed)
  in
  let diff_a =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"A.json" ~doc:"Reference BENCH_*.json file.")
  in
  let diff_b =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B.json" ~doc:"Candidate BENCH_*.json file.")
  in
  let diff_tol =
    Arg.(
      value & opt float 0.05
      & info [ "tol" ] ~doc:"Relative tolerance per metric.")
  in
  let diff_ignore =
    Arg.(
      value & opt_all string []
      & info [ "ignore-prefix" ]
          ~doc:
            "Drop metrics whose key starts with $(docv) before comparing \
             (repeatable). Use for machine-dependent values, e.g. \
             $(b,--ignore-prefix wallclock) when byte-gating \
             BENCH_scale.json.")
  in
  let bench_diff_term =
    Term.(const bench_diff_cmd $ diff_a $ diff_b $ diff_tol $ diff_ignore)
  in
  let scn_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.scn" ~doc:"Scenario file (s-expression text).")
  in
  let scn_stack =
    Arg.(
      value & opt string "xenic"
      & info [ "stack"; "s" ]
          ~doc:"Stack to run: xenic, drtmh, drtmh-nc, fasst, drtmr, farm.")
  in
  let scn_seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.")
  in
  let scn_target =
    Arg.(
      value & opt int 300
      & info [ "target"; "n" ]
          ~doc:"Committed-transaction target (closed-loop scenarios only).")
  in
  let scn_concurrency =
    Arg.(
      value & opt int 8
      & info [ "concurrency"; "c" ]
          ~doc:
            "Outstanding transactions per coordinator (closed-loop \
             scenarios only).")
  in
  let scn_verbose =
    Arg.(
      value & flag
      & info [ "digest" ]
          ~doc:"Also print the lossless run digest (bit-identity checks).")
  in
  let scenario_run_term =
    Term.(
      const scenario_run_cmd $ scn_file $ scn_stack $ scn_seed $ scn_target
      $ scn_concurrency $ scn_verbose)
  in
  Cmd.group
    (Cmd.info "xenicctl" ~doc:"Run Xenic-reproduction benchmarks")
    [
      Cmd.v
        (Cmd.info "run" ~doc:"Run a benchmark and print summary metrics.")
        run_term;
      Cmd.v
        (Cmd.info "trace"
           ~doc:
             "Run a benchmark with the execution trace attached; write \
              Chrome trace JSON and print the per-phase latency breakdown \
              and abort-reason taxonomy.")
        trace_term;
      Cmd.v
        (Cmd.info "profile"
           ~doc:
             "Run a benchmark with time attribution enabled; write the \
              per-resource bottleneck report and the collapsed-stack \
              flamegraph, and print the report.")
        profile_term;
      Cmd.v
        (Cmd.info "telemetry"
           ~doc:
             "Run a benchmark with the windowed flight recorder attached; \
              print the per-window rollup table and online detector \
              verdicts (retry-storm, queue-growth, Little's-law residual, \
              SLO burn rate), and write the series as BENCH-style JSON \
              and OpenMetrics text.")
        telemetry_term;
      Cmd.group
        (Cmd.info "bench" ~doc:"Benchmark artifact utilities.")
        [
          Cmd.v
            (Cmd.info "diff"
               ~doc:
                 "Compare two BENCH_*.json metric files with a relative \
                  tolerance; print per-metric deltas and exit nonzero if \
                  any metric regressed out of tolerance.")
            bench_diff_term;
        ];
      Cmd.group
        (Cmd.info "scenario"
           ~doc:"Declarative fault/load scenario utilities.")
        [
          Cmd.v
            (Cmd.info "run"
               ~doc:
                 "Validate a scenario file and drive it end to end on one \
                  stack under the scenario harness (strict engine, \
                  serializability oracle); print the outcome and nonzero \
                  counters, exiting nonzero on a violation.")
            scenario_run_term;
        ];
    ]

let () = exit (Cmd.eval cmd)
