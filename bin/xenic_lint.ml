(* Determinism lint over the simulator sources. Exit 0 = clean, 1 =
   findings, 2 = usage. See lib/lint/lint.mli for the rule set. *)

let usage () =
  prerr_endline "usage: xenic_lint DIR-OR-FILE...";
  prerr_endline "       lints every .ml under the given roots";
  exit 2

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> usage () | _ :: r -> r
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (fun r -> Printf.eprintf "xenic_lint: no such path: %s\n" r) missing;
    usage ()
  end;
  let findings = Lint.lint_roots roots in
  List.iter (fun f -> print_endline (Lint.to_string f)) findings;
  if findings = [] then exit 0
  else begin
    Printf.printf "xenic_lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
