(* Static-analysis driver. Exit 0 = clean, 1 = findings, 2 = usage.

   Subcommands:
     xenic_lint [lint] ROOT...         classic determinism rules
     xenic_lint suspend ROOT...        may-suspend inventory (stdout)
     xenic_lint atomicity ROOT...      ATOMICITY findings
     xenic_lint atomicity --inventory ROOT...
                                       annotated-finding inventory (stdout);
                                       fails if unannotated findings exist
     xenic_lint report ROOT...         DOMAIN-SHARED mutable-state report

   [--format json] switches any subcommand to machine-readable output.
   A first argument that is an existing path keeps the legacy
   [xenic_lint DIR-OR-FILE...] form working (the root `dune` lint alias
   and any scripts that call it). *)

let usage () =
  prerr_endline "usage: xenic_lint [SUBCOMMAND] [--format json] DIR-OR-FILE...";
  prerr_endline "  subcommands: lint (default) | suspend | atomicity | report";
  prerr_endline "  atomicity also takes --inventory";
  exit 2

type format = Text | Json

let parse_opts args =
  let fmt = ref Text in
  let inventory = ref false in
  let rec go acc = function
    | [] -> List.rev acc
    | "--format" :: "json" :: rest ->
        fmt := Json;
        go acc rest
    | "--format" :: _ ->
        prerr_endline "xenic_lint: --format takes `json'";
        usage ()
    | "--inventory" :: rest ->
        inventory := true;
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  let roots = go [] args in
  (roots, !fmt, !inventory)

let check_roots roots =
  if roots = [] then usage ();
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter
      (fun r -> Printf.eprintf "xenic_lint: no such path: %s\n" r)
      missing;
    usage ()
  end

(* Parse every .ml under [roots]; analyzer passes skip files the parser
   rejects (the classic lint still covers them lexically). *)
let load roots =
  Lint.collect_ml_files roots
  |> List.filter_map (fun file ->
         let src = Lint.read_file file in
         match Lint.parse_impl ~filename:file src with
         | Some ast -> Some (file, src, ast)
         | None ->
             Printf.eprintf "xenic_lint: skipping unparseable %s\n" file;
             None)

let build_graph files =
  let graph = Callgraph.build (List.map (fun (f, _, ast) -> (f, ast)) files) in
  let susp = Suspend.infer graph in
  (graph, susp)

let print_lines = List.iter print_endline

(* ---- lint ---------------------------------------------------------- *)

let finding_json (f : Lint.finding) =
  Ljson.O
    [
      ("rule", Ljson.S (Lint.rule_id f.rule));
      ("file", Ljson.S f.file);
      ("line", Ljson.I f.line);
      ("message", Ljson.S f.message);
    ]

let run_lint fmt roots =
  let findings = Lint.lint_roots roots in
  (match fmt with
  | Json ->
      print_endline
        (Ljson.to_string
           (Ljson.O [ ("findings", Ljson.L (List.map finding_json findings)) ]))
  | Text ->
      List.iter (fun f -> print_endline (Lint.to_string f)) findings;
      if findings <> [] then
        Printf.printf "xenic_lint: %d finding(s)\n" (List.length findings));
  if findings = [] then 0 else 1

(* ---- suspend ------------------------------------------------------- *)

let run_suspend fmt roots =
  let files = load roots in
  let graph, _ = build_graph files in
  let inv = Suspend.inventory graph in
  (match fmt with
  | Json ->
      print_endline
        (Ljson.to_string
           (Ljson.O
              [ ("suspend", Ljson.L (List.map (fun k -> Ljson.S k) inv)) ]))
  | Text -> print_lines inv);
  0

(* ---- atomicity ----------------------------------------------------- *)

let atomicity_json (f : Atomicity.finding) =
  Ljson.O
    [
      ("rule", Ljson.S "ATOMICITY");
      ("file", Ljson.S f.a_file);
      ("line", Ljson.I f.a_line);
      ("def", Ljson.S f.a_def);
      ("lvalue", Ljson.S f.a_lvalue);
      ("read_line", Ljson.I f.a_read_line);
      ("suspend_line", Ljson.I f.a_susp_line);
      ("callee", Ljson.S f.a_callee);
      ( "tag",
        match f.a_tag with Some t -> Ljson.S t | None -> Ljson.Null );
    ]

let run_atomicity fmt ~inventory roots =
  let files = load roots in
  let graph, susp = build_graph files in
  let findings = Atomicity.analyze ~graph ~susp files in
  let bad = Atomicity.unannotated findings in
  if inventory then begin
    (* Inventory mode feeds the checked-in ratchet: the annotated audit
       list goes to stdout; unannotated findings are a hard error. *)
    print_lines (Atomicity.inventory findings);
    if bad = [] then 0
    else begin
      List.iter (fun f -> prerr_endline (Atomicity.to_string f)) bad;
      Printf.eprintf "xenic_lint: %d unannotated ATOMICITY finding(s)\n"
        (List.length bad);
      1
    end
  end
  else begin
    (match fmt with
    | Json ->
        print_endline
          (Ljson.to_string
             (Ljson.O
                [
                  ("findings", Ljson.L (List.map atomicity_json findings));
                  ("unannotated", Ljson.I (List.length bad));
                ]))
    | Text ->
        List.iter (fun f -> print_endline (Atomicity.to_string f)) findings;
        if bad <> [] then
          Printf.printf "xenic_lint: %d unannotated ATOMICITY finding(s)\n"
            (List.length bad));
    if bad = [] then 0 else 1
  end

(* ---- report -------------------------------------------------------- *)

let entry_json (e : Domain_shared.entry) =
  Ljson.O
    [
      ("key", Ljson.S e.s_key);
      ("file", Ljson.S e.s_file);
      ("line", Ljson.I e.s_line);
      ("kinds", Ljson.L (List.map (fun k -> Ljson.S k) e.s_kinds));
      ("refs", Ljson.L (List.map (fun r -> Ljson.S r) e.s_refs));
      ("suspending_refs", Ljson.B e.s_suspending_refs);
      ( "partitioned",
        match e.s_tag with Some t -> Ljson.S t | None -> Ljson.Null );
    ]

let run_report fmt roots =
  let files = load roots in
  let graph, susp = build_graph files in
  let entries = Domain_shared.scan ~graph ~susp files in
  (* The report is also a ratchet: module-level mutable state without a
     `partitioned <tag>' annotation is a hard error — the engine runs
     partitions on separate domains, so new ambient globals must name
     their synchronization story or become engine-local. *)
  let bad = Domain_shared.unannotated entries in
  (match fmt with
  | Json ->
      print_endline
        (Ljson.to_string
           (Ljson.O
              [
                ("shared", Ljson.L (List.map entry_json entries));
                ("unannotated", Ljson.I (List.length bad));
              ]))
  | Text -> print_lines (Domain_shared.report entries));
  if bad = [] then 0
  else begin
    List.iter (fun e -> prerr_endline (Domain_shared.to_string e)) bad;
    Printf.eprintf "xenic_lint: %d unannotated DOMAIN-SHARED entr%s\n"
      (List.length bad)
      (if List.length bad = 1 then "y" else "ies");
    1
  end

(* -------------------------------------------------------------------- *)

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: r -> r in
  let sub, rest =
    match args with
    | ("lint" | "suspend" | "atomicity" | "report") :: r -> (List.hd args, r)
    | _ -> ("lint", args)  (* legacy: xenic_lint DIR-OR-FILE... *)
  in
  let roots, fmt, inventory = parse_opts rest in
  if inventory && sub <> "atomicity" then begin
    prerr_endline "xenic_lint: --inventory only applies to `atomicity'";
    usage ()
  end;
  check_roots roots;
  exit
    (match sub with
    | "suspend" -> run_suspend fmt roots
    | "atomicity" -> run_atomicity fmt ~inventory roots
    | "report" -> run_report fmt roots
    | _ -> run_lint fmt roots)
